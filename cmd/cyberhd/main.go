// Command cyberhd is the training and evaluation CLI.
//
// Subcommands:
//
//	cyberhd gen -dataset nsl-kdd -n 20000 -out nsl.csv     # synthesize a dataset
//	cyberhd train -in nsl.csv                              # train + full report
//	cyberhd train -dataset unsw-nb15 -n 10000 -cycles 0    # synthetic, static HDC
//	cyberhd quantize -dataset nsl-kdd -n 8000              # accuracy across bitwidths
//	cyberhd faults -dataset nsl-kdd -rate 0.1 -bits 1      # robustness spot check
//	cyberhd detect -train 3000 -sessions 1000              # end-to-end live detection
//	cyberhd detect -shards 0 -batch 64                     # flow-sharded, one engine per core
//	cyberhd detect -width 4 -batch 64                      # packed 4-bit integer inference
//	cyberhd detect -capture traffic.cap -jsonl alerts.jsonl # O(1)-memory replay, JSONL alerts
//	cyberhd detect -metrics :9090                          # live /metrics, /stats, /healthz
//	cyberhd serve -listen 127.0.0.1:9301                   # cluster detector worker
//	cyberhd ingest -workers 127.0.0.1:9301,127.0.0.1:9302  # fan a capture out across workers
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"cyberhd"
	"cyberhd/internal/bitpack"
	"cyberhd/internal/datasets"
	"cyberhd/internal/faults"
	"cyberhd/internal/metrics"
	"cyberhd/internal/netflow"
	"cyberhd/internal/pipeline"
	"cyberhd/internal/quantize"
	"cyberhd/internal/rng"
	"cyberhd/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "quantize":
		err = cmdQuantize(os.Args[2:])
	case "faults":
		err = cmdFaults(os.Args[2:])
	case "detect":
		err = cmdDetect(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyberhd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cyberhd <gen|train|quantize|faults|detect|serve|ingest> [flags]")
	os.Exit(2)
}

// loadOrGen builds a dataset from -in CSV or synthesizes -dataset.
func loadOrGen(in, name string, n int, seed uint64) (*cyberhd.Dataset, error) {
	if in != "" {
		return cyberhd.LoadCSV(in)
	}
	d, ok := cyberhd.DatasetByName(name, n, seed)
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q (want one of %v)", name, datasets.PaperDatasets())
	}
	return d, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("dataset", "nsl-kdd", "dataset to synthesize")
	n := fs.Int("n", 10000, "samples (sessions for CIC sets)")
	seed := fs.Uint64("seed", 42, "random seed")
	out := fs.String("out", "", "output CSV path (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out required")
	}
	d, ok := cyberhd.DatasetByName(*name, *n, *seed)
	if !ok {
		return fmt.Errorf("unknown dataset %q", *name)
	}
	if err := cyberhd.SaveCSV(*out, d); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d samples × %d features, %d classes\n",
		*out, d.Len(), d.NumFeatures(), d.NumClasses())
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	in := fs.String("in", "", "input CSV (from gen); empty = synthesize")
	name := fs.String("dataset", "nsl-kdd", "dataset when -in is empty")
	n := fs.Int("n", 8000, "samples when synthesizing")
	seed := fs.Uint64("seed", 42, "random seed")
	dim := fs.Int("dim", 512, "physical hyperspace dimensionality")
	epochs := fs.Int("epochs", 8, "adaptive epochs per cycle")
	cycles := fs.Int("cycles", 7, "regeneration cycles (0 = static BaselineHD)")
	rate := fs.Float64("rate", 0.2, "regeneration rate R")
	lr := fs.Float64("lr", 0.1, "learning rate η")
	fs.Parse(args)

	d, err := loadOrGen(*in, *name, *n, *seed)
	if err != nil {
		return err
	}
	cfg := cyberhd.Config{
		Dim: *dim, Epochs: *epochs, RegenCycles: *cycles, RegenRate: *rate,
		LearningRate: *lr, TrainFraction: 0.75, Seed: *seed,
	}
	det, err := cyberhd.TrainDetector(d, cfg)
	if err != nil {
		return err
	}
	fmt.Println(det)
	for _, h := range det.Model.History {
		fmt.Printf("  cycle %d: dropped=%3d D*=%4d trainAcc=%.4f\n",
			h.Cycle, h.Dropped, h.EffectiveDim, h.TrainAcc)
	}

	// Full quality report on a fresh evaluation split.
	_, test, norm := d.NormalizedSplit(0.75, *seed)
	_ = norm
	conf := metrics.NewConfusion(d.ClassNames)
	preds := det.Model.PredictBatch(test.X)
	conf.AddAll(test.Y, preds)
	fmt.Printf("\naccuracy: %.4f   macro-F1: %.4f   detection: %.4f   false-alarm: %.4f\n",
		conf.Accuracy(), conf.MacroF1(), conf.DetectionRate(0), conf.FalseAlarmRate(0))
	fmt.Println("\nconfusion matrix:")
	fmt.Print(conf)
	fmt.Println("\nper-class report:")
	for _, r := range conf.Report() {
		fmt.Printf("  %-14s support=%5d P=%.3f R=%.3f F1=%.3f\n",
			r.Class, r.Support, r.Precision, r.Recall, r.F1)
	}
	return nil
}

func cmdQuantize(args []string) error {
	fs := flag.NewFlagSet("quantize", flag.ExitOnError)
	in := fs.String("in", "", "input CSV; empty = synthesize")
	name := fs.String("dataset", "nsl-kdd", "dataset when -in is empty")
	n := fs.Int("n", 8000, "samples when synthesizing")
	seed := fs.Uint64("seed", 42, "random seed")
	fs.Parse(args)

	d, err := loadOrGen(*in, *name, *n, *seed)
	if err != nil {
		return err
	}
	det, err := cyberhd.TrainDetector(d, cyberhd.DefaultConfig())
	if err != nil {
		return err
	}
	_, test, _ := d.NormalizedSplit(0.75, *seed)
	fmt.Printf("float32 accuracy: %.4f   class memory: %d bits\n",
		det.Model.Evaluate(test.X, test.Y),
		det.Model.NumClasses()*det.Model.Dim()*32)
	for _, w := range bitpack.Widths {
		q, err := quantize.FromCore(det.Model, w)
		if err != nil {
			return err
		}
		fmt.Printf("%2d-bit accuracy:  %.4f   class memory: %d bits\n",
			w, q.Evaluate(test.X, test.Y), q.MemoryBits())
	}
	return nil
}

func cmdFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	in := fs.String("in", "", "input CSV; empty = synthesize")
	name := fs.String("dataset", "nsl-kdd", "dataset when -in is empty")
	n := fs.Int("n", 8000, "samples when synthesizing")
	seed := fs.Uint64("seed", 42, "random seed")
	rate := fs.Float64("rate", 0.1, "fraction of elements hit by a bit flip")
	bits := fs.Int("bits", 1, "HDC element bitwidth")
	trials := fs.Int("trials", 5, "injection trials")
	fs.Parse(args)

	d, err := loadOrGen(*in, *name, *n, *seed)
	if err != nil {
		return err
	}
	det, err := cyberhd.TrainDetector(d, cyberhd.DefaultConfig())
	if err != nil {
		return err
	}
	_, test, _ := d.NormalizedSplit(0.75, *seed)
	q, err := quantize.FromCore(det.Model, bitpack.Width(*bits))
	if err != nil {
		return err
	}
	clean := q.Evaluate(test.X, test.Y)
	r := rng.New(*seed + 1)
	var lossSum float64
	for i := 0; i < *trials; i++ {
		hurt := q.Clone()
		nFlips := faults.InjectQuantized(hurt.Class, *rate, r)
		acc := hurt.Evaluate(test.X, test.Y)
		lossSum += clean - acc
		fmt.Printf("trial %d: %5d elements corrupted, accuracy %.4f (clean %.4f)\n",
			i+1, nFlips, acc, clean)
	}
	fmt.Printf("\nmean accuracy loss at %.0f%% error rate, %d-bit: %.2f pp\n",
		100**rate, *bits, 100*lossSum/float64(*trials))
	return nil
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	trainSessions := fs.Int("train", 3000, "training capture size (sessions)")
	liveSessions := fs.Int("sessions", 1000, "live capture size (sessions)")
	seed := fs.Uint64("seed", 42, "random seed")
	capture := fs.String("capture", "", "replay a binary capture instead of generating live traffic (streamed in O(1) memory)")
	pcap := fs.String("pcap", "", "replay a PCAP or pcapng capture through the decode stack (Ethernet/VLAN/IPv4/IPv6; streamed in O(1) memory)")
	shards := fs.Int("shards", 1, "engine shards (1 = single in-process engine; 0 = one per core)")
	batch := fs.Int("batch", 0, "micro-batch size per engine (0 = classify per flow)")
	width := fs.Int("width", 0, "quantized inference bitwidth: 1, 2, 4, 8, 16 or 32 (0 = float32)")
	tick := fs.Float64("tick", 1, "auto-tick interval in capture seconds (bounds batched-verdict delay; < 0 disables)")
	overload := fs.String("overload", "lossless", "ingress admission policy: lossless (blocking, never drops) or bounded (bounded-latency admission with counted shedding)")
	tenantRate := fs.Float64("tenant-rate", 0, "bounded mode: cap each tenant (v4 /24 or v6 /48 of the canonical flow key) at this many packets per capture second (0 disables)")
	jsonl := fs.String("jsonl", "", "append alerts as JSON lines to this file ('-' = stdout)")
	metricsAddr := fs.String("metrics", "", "serve live /metrics (Prometheus), /stats (JSON), /healthz and the /model control plane on this address for the whole run")
	metricsLinger := fs.Float64("metrics-linger", 0, "keep the -metrics endpoint up this many seconds after the run (for scrapers that poll final counters)")
	saveModel := fs.String("save-model", "", "write the trained model as a versioned snapshot to this file (load with the /model control plane or cyberhd.LoadModelSnapshotFile)")
	progress := fs.Float64("progress", 0, "print a progress line to stderr every N capture seconds (0 disables)")
	verbose := fs.Bool("v", false, "print every alert")
	fs.Parse(args)
	if *width != 0 && !bitpack.Width(*width).Valid() {
		return fmt.Errorf("detect: -width %d not one of %v", *width, bitpack.Widths)
	}
	var pol cyberhd.OverloadPolicy
	switch *overload {
	case "lossless":
		if *tenantRate > 0 {
			return fmt.Errorf("detect: -tenant-rate requires -overload bounded (lossless never drops)")
		}
	case "bounded":
		pol.Mode = cyberhd.OverloadBounded
		pol.TenantRate = *tenantRate
	default:
		return fmt.Errorf("detect: -overload %q not one of lossless, bounded", *overload)
	}

	// Bind the admin endpoint before the (slow) training step: liveness is
	// answerable immediately, counters read zero until serving starts. The
	// /model control plane mounts lazily — it answers 503 until the
	// detector exists, then hot-swaps in (one atomic pointer store).
	// CIC-derived detectors label verdicts with the traffic labels.
	classNames := traffic.LabelNames()
	var tel *cyberhd.Telemetry
	var metricsSrv *cyberhd.MetricsServer
	var lazyPlane *lazyHandler
	if *metricsAddr != "" {
		tel = cyberhd.NewTelemetry(classNames)
		lazyPlane = &lazyHandler{}
		srv, err := cyberhd.ServeMetricsWith(*metricsAddr, tel, map[string]http.Handler{
			"/model":  lazyPlane,
			"/model/": lazyPlane,
		})
		if err != nil {
			return err
		}
		metricsSrv = srv
		defer metricsSrv.Close()
		fmt.Printf("metrics endpoint: http://%s/metrics (also /stats, /healthz, /model)\n", srv.Addr())
	}

	det, err := cyberhd.TrainDetector(cyberhd.CICIDS2017(*trainSessions, *seed), cyberhd.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Println("detector:", det)
	k := cyberhd.Kernels()
	fmt.Printf("kernels: float=%s packed=%s\n", k.Float, k.Packed)

	// The control plane serves through a COW wrapper over the trained
	// model so uploads publish atomically against concurrent reads; the
	// snapshot file captures the same publication.
	var cow *cyberhd.COWModel
	var tap *cyberhd.ShadowTap
	if *saveModel != "" || lazyPlane != nil {
		cow = cyberhd.NewCOWModel(det.Model)
	}
	if *saveModel != "" {
		if err := cyberhd.SaveModelSnapshotFile(*saveModel, cow); err != nil {
			return err
		}
		fmt.Printf("model snapshot: %s (version %d)\n", *saveModel, cow.Version())
	}
	if lazyPlane != nil {
		tap = cyberhd.NewShadowTap()
		plane, err := cyberhd.NewControlPlane(cyberhd.ControlPlaneConfig{
			Model: cow, Width: cyberhd.Width(*width), Shadow: tap,
		})
		if err != nil {
			return err
		}
		lazyPlane.set(plane.Handler())
	}

	// Ingest: an O(1)-memory capture or PCAP replay, or generated live
	// traffic.
	if *capture != "" && *pcap != "" {
		return fmt.Errorf("detect: -capture and -pcap are mutually exclusive")
	}
	var src cyberhd.PacketSource
	var live *cyberhd.TrafficStream
	var pcapSrc *cyberhd.PCAPFile
	if *pcap != "" {
		pf, err := cyberhd.OpenPCAP(*pcap)
		if err != nil {
			return err
		}
		defer pf.Close()
		src = pf
		pcapSrc = pf
	} else if *capture != "" {
		cf, err := cyberhd.OpenCapture(*capture)
		if err != nil {
			return err
		}
		defer cf.Close()
		src = cf
	} else {
		live = cyberhd.GenerateTraffic(cyberhd.TrafficConfig{Sessions: *liveSessions, Seed: *seed + 1})
		src = cyberhd.NewSliceSource(live.Packets)
	}

	// Egress: optional verbose printing and JSONL export ride along as
	// alert sinks on the one serving path.
	opts := []cyberhd.EngineOption{
		cyberhd.WithBatchSize(*batch),
		cyberhd.WithQuantized(cyberhd.Width(*width)),
		cyberhd.WithShards(*shards),
		cyberhd.WithTickInterval(*tick),
		cyberhd.WithOverloadPolicy(pol),
	}
	if tel != nil {
		opts = append(opts, cyberhd.WithTelemetry(tel))
	}
	if cow != nil {
		opts = append(opts, cyberhd.WithModel(cow))
	}
	if tap != nil {
		opts = append(opts, cyberhd.WithShadow(tap))
	}
	if *progress > 0 {
		opts = append(opts, cyberhd.WithProgress(*progress, func(s cyberhd.TelemetrySnapshot) {
			fmt.Fprintf(os.Stderr, "progress: %d packets, %d flows, %d alerts (%d pending)\n",
				s.Packets, s.Flows, s.Alerts, s.Pending())
		}))
	}
	if *verbose {
		opts = append(opts, cyberhd.WithSinks(cyberhd.SinkFunc(func(a cyberhd.Alert) {
			fmt.Printf("ALERT t=%9.2fs %-12s %4d pkts %9.0f bytes\n",
				a.Time, a.ClassName, a.Flow.TotalPackets(), a.Flow.TotalBytes())
		})))
	}
	var jsonlSink *cyberhd.JSONLSink
	var jsonlFile *os.File
	if *jsonl != "" {
		w := io.Writer(os.Stdout)
		if *jsonl != "-" {
			f, err := os.Create(*jsonl)
			if err != nil {
				return err
			}
			jsonlFile = f
			defer f.Close() // backstop for error returns; success path closes and checks below
			w = f
		}
		jsonlSink = cyberhd.NewJSONLSink(w)
		opts = append(opts, cyberhd.WithSinks(jsonlSink))
	}
	if *width != 0 {
		fmt.Printf("quantized inference: %d-bit packed class memory\n", *width)
	}
	// Mirror the runner's shard resolution (0 = one per core; a resolved
	// count of 1 serves the plain single-core engine).
	if n := *shards; n != 1 {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		if n > 1 {
			fmt.Printf("sharded engine: %d flow-hash shards\n", n)
		}
	}
	if pol.Mode == cyberhd.OverloadBounded {
		if pol.TenantRate > 0 {
			fmt.Printf("overload policy: bounded (max-wait %v, tenant-rate %g pkt/s per v4 /24 or v6 /48)\n",
				pipeline.DefaultMaxWait, pol.TenantRate)
		} else {
			fmt.Printf("overload policy: bounded (max-wait %v)\n", pipeline.DefaultMaxWait)
		}
	} else {
		fmt.Println("overload policy: lossless (blocking ingress, never drops)")
	}

	st, err := cyberhd.Serve(context.Background(), det, src, opts...)
	if err != nil {
		return err
	}
	// A failed alert export must fail the run: a truncated JSONL file that
	// exits 0 looks like a successful export to anything scripted on top.
	if jsonlSink != nil {
		if err := jsonlSink.Err(); err != nil {
			return fmt.Errorf("jsonl sink: %w", err)
		}
		if jsonlFile != nil {
			if err := jsonlFile.Close(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("\nprocessed %d packets -> %d flows, %d alerts\n", st.Packets, st.Flows, st.Alerts)
	if pcapSrc != nil && pcapSrc.Skipped() > 0 {
		fmt.Printf("pcap: skipped %d frames outside the decode stack\n", pcapSrc.Skipped())
	}
	if pol.Mode == cyberhd.OverloadBounded {
		// Always printed in bounded mode (even when zero): the accounting
		// line CI greps, offered = processed + dropped.
		fmt.Printf("dropped %d packets (backpressure=%d new_flow_shed=%d tenant_rate=%d)\n",
			st.DroppedTotal(), st.Dropped[cyberhd.DropBackpressure],
			st.Dropped[cyberhd.DropNewFlowShed], st.Dropped[cyberhd.DropTenantRate])
	}
	if tel != nil {
		s := tel.Snapshot()
		if s.Latency.Count > 0 {
			fmt.Printf("verdict latency (capture time): mean %.3fs over %d verdicts",
				s.Latency.Sum/float64(s.Latency.Count), s.Latency.Count)
			if s.Suppressed > 0 {
				fmt.Printf(", %d alerts rate-limited", s.Suppressed)
			}
			fmt.Println()
		}
		if cow != nil {
			fmt.Printf("serving model version: %d\n", cow.Version())
		}
		if s.ShadowFlows > 0 {
			fmt.Printf("shadow serving: %d flows scored, %d diverged from primary\n",
				s.ShadowFlows, s.ShadowDivergedTotal())
		}
	}

	// Score verdicts against ground truth where available (generated
	// traffic only — captures carry no labels), using the same inference
	// the engine served: the packed quantized model when -width is set.
	if live != nil {
		scoreModel := pipeline.Classifier(det.Model)
		if *width != 0 {
			q, err := quantize.FromCore(det.Model, bitpack.Width(*width))
			if err != nil {
				return err
			}
			scoreModel = q
		}
		conf := metrics.NewConfusion(det.ClassNames)
		scored := 0
		a := netflow.NewAssembler(120, 1, func(f *netflow.Flow) {
			label, ok := live.Labels[f.Key]
			if !ok {
				return
			}
			feat := f.Features()
			x := make([]float32, len(feat))
			copy(x, feat)
			det.Normalizer.ApplyVec(x)
			conf.Add(int(label), scoreModel.Predict(x))
			scored++
		})
		for i := range live.Packets {
			a.Add(&live.Packets[i])
		}
		a.Flush()
		if scored > 0 {
			fmt.Printf("scored %d labeled flows: accuracy %.4f, detection rate %.4f, false alarms %.4f\n",
				scored, conf.Accuracy(), conf.DetectionRate(0), conf.FalseAlarmRate(0))
			fmt.Println("\nconfusion matrix:")
			fmt.Print(conf)
		}
	}

	// Linger last, after every report is printed: scrapers polling final
	// counters get their window without stalling the operator's output.
	if metricsSrv != nil && *metricsLinger > 0 {
		fmt.Printf("metrics endpoint stays up %.0fs (http://%s/metrics)\n", *metricsLinger, metricsSrv.Addr())
		time.Sleep(time.Duration(*metricsLinger * float64(time.Second)))
	}
	return nil
}

// cmdServe runs one cluster detector worker: session configuration and
// model arrive over the wire from the ingest node, so the worker itself
// trains nothing and takes almost no flags.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:9301", "TCP listen address for ingest connections")
	quiet := fs.Bool("q", false, "suppress per-session log lines")
	fs.Parse(args)
	cfg := cyberhd.ClusterWorkerConfig{}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	w, err := cyberhd.NewClusterWorker(*listen, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("cluster worker listening on %s\n", w.Addr())
	return w.Serve()
}

// cmdIngest trains a detector exactly like detect, then fans the capture
// out across a worker fleet instead of a local engine. The summary line
// is detect's, byte for byte — CI diffs the two to pin the cluster's
// bit-identity contract.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	workers := fs.String("workers", "", "comma-separated worker addresses (required)")
	trainSessions := fs.Int("train", 3000, "training capture size (sessions)")
	liveSessions := fs.Int("sessions", 1000, "live capture size (sessions)")
	seed := fs.Uint64("seed", 42, "random seed")
	capture := fs.String("capture", "", "replay a binary capture instead of generating live traffic (streamed in O(1) memory)")
	pcap := fs.String("pcap", "", "replay a PCAP or pcapng capture through the decode stack (Ethernet/VLAN/IPv4/IPv6; streamed in O(1) memory)")
	batch := fs.Int("batch", 0, "micro-batch size per worker engine (0 = classify per flow)")
	width := fs.Int("width", 0, "quantized inference bitwidth on each worker: 1, 2, 4, 8, 16 or 32 (0 = float32)")
	workerShards := fs.Int("worker-shards", 1, "engine shards inside each worker (1 = single engine per worker)")
	tick := fs.Float64("tick", 1, "auto-tick interval in capture seconds, broadcast to every worker (< 0 disables)")
	overload := fs.String("overload", "lossless", "ingress admission policy: lossless (blocking, never drops) or bounded (bounded-latency admission with counted shedding)")
	tenantRate := fs.Float64("tenant-rate", 0, "bounded mode: cap each tenant (v4 /24 or v6 /48 of the canonical flow key) at this many packets per capture second (0 disables)")
	jsonl := fs.String("jsonl", "", "append merged alerts as JSON lines to this file ('-' = stdout)")
	metricsAddr := fs.String("metrics", "", "serve the cluster-wide rollup /metrics (Prometheus), /stats (JSON) and /healthz on this address")
	metricsLinger := fs.Float64("metrics-linger", 0, "keep the -metrics endpoint up this many seconds after the run")
	verbose := fs.Bool("v", false, "print every merged alert")
	fs.Parse(args)
	if *workers == "" {
		return fmt.Errorf("ingest: -workers required (comma-separated host:port list)")
	}
	var fleet []string
	for _, a := range strings.Split(*workers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			fleet = append(fleet, a)
		}
	}
	if len(fleet) == 0 {
		return fmt.Errorf("ingest: -workers lists no addresses")
	}
	if *width != 0 && !bitpack.Width(*width).Valid() {
		return fmt.Errorf("ingest: -width %d not one of %v", *width, bitpack.Widths)
	}
	var pol cyberhd.OverloadPolicy
	switch *overload {
	case "lossless":
		if *tenantRate > 0 {
			return fmt.Errorf("ingest: -tenant-rate requires -overload bounded (lossless never drops)")
		}
	case "bounded":
		pol.Mode = cyberhd.OverloadBounded
		pol.TenantRate = *tenantRate
	default:
		return fmt.Errorf("ingest: -overload %q not one of lossless, bounded", *overload)
	}

	// Bind the rollup endpoint before the (slow) training step. Counters
	// come from the merged worker telemetry, so the handler reads through
	// an atomic pointer that flips from an empty snapshot to the live
	// cluster once dialed.
	var clientPtr atomic.Pointer[cyberhd.ClusterClient]
	if *metricsAddr != "" {
		srv, err := cyberhd.ServeMetricsFrom(*metricsAddr, func() cyberhd.TelemetrySnapshot {
			if c := clientPtr.Load(); c != nil {
				return c.MergedSnapshot()
			}
			return cyberhd.TelemetrySnapshot{Classes: traffic.LabelNames()}
		}, nil)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("cluster rollup endpoint: http://%s/metrics (also /stats, /healthz)\n", srv.Addr())
	}

	det, err := cyberhd.TrainDetector(cyberhd.CICIDS2017(*trainSessions, *seed), cyberhd.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Println("detector:", det)

	// Egress sinks ride on the merged alert stream, same as detect.
	var sinks []cyberhd.AlertSink
	if *verbose {
		sinks = append(sinks, cyberhd.SinkFunc(func(a cyberhd.Alert) {
			fmt.Printf("ALERT t=%9.2fs %-12s %4d pkts %9.0f bytes\n",
				a.Time, a.ClassName, a.Flow.TotalPackets(), a.Flow.TotalBytes())
		}))
	}
	var jsonlSink *cyberhd.JSONLSink
	var jsonlFile *os.File
	if *jsonl != "" {
		w := io.Writer(os.Stdout)
		if *jsonl != "-" {
			f, err := os.Create(*jsonl)
			if err != nil {
				return err
			}
			jsonlFile = f
			defer f.Close() // backstop for error returns; success path closes and checks below
			w = f
		}
		jsonlSink = cyberhd.NewJSONLSink(w)
		sinks = append(sinks, jsonlSink)
	}

	client, err := cyberhd.DialCluster(cyberhd.ClusterConfig{
		Workers:      fleet,
		Model:        cyberhd.NewCOWModel(det.Model),
		Normalizer:   det.Normalizer,
		ClassNames:   det.ClassNames,
		BatchSize:    *batch,
		Width:        cyberhd.Width(*width),
		WorkerShards: *workerShards,
		Sinks:        sinks,
	})
	if err != nil {
		return err
	}
	clientPtr.Store(client)
	fmt.Printf("cluster: %d workers, flow-hash fan-out\n", len(fleet))
	if *width != 0 {
		fmt.Printf("quantized inference: %d-bit packed class memory\n", *width)
	}

	if *capture != "" && *pcap != "" {
		return fmt.Errorf("ingest: -capture and -pcap are mutually exclusive")
	}
	var src cyberhd.PacketSource
	var pcapSrc *cyberhd.PCAPFile
	if *pcap != "" {
		pf, err := cyberhd.OpenPCAP(*pcap)
		if err != nil {
			return err
		}
		defer pf.Close()
		src = pf
		pcapSrc = pf
	} else if *capture != "" {
		cf, err := cyberhd.OpenCapture(*capture)
		if err != nil {
			return err
		}
		defer cf.Close()
		src = cf
	} else {
		live := cyberhd.GenerateTraffic(cyberhd.TrafficConfig{Sessions: *liveSessions, Seed: *seed + 1})
		src = cyberhd.NewSliceSource(live.Packets)
	}

	// The admission gate sits between the source and the fan-out stream,
	// exactly where it sits in front of a local engine: shed at ingress,
	// before the cluster transport spends anything on the packet.
	stream := cyberhd.Stream(client)
	if pol.Mode == cyberhd.OverloadBounded {
		stream = cyberhd.NewGate(client, pol)
		if pol.TenantRate > 0 {
			fmt.Printf("overload policy: bounded (max-wait %v, tenant-rate %g pkt/s per v4 /24 or v6 /48)\n",
				pipeline.DefaultMaxWait, pol.TenantRate)
		} else {
			fmt.Printf("overload policy: bounded (max-wait %v)\n", pipeline.DefaultMaxWait)
		}
	} else {
		fmt.Println("overload policy: lossless (blocking ingress, never drops)")
	}

	st, err := (&cyberhd.Runner{Stream: stream, Source: src, TickInterval: *tick}).Run(context.Background())
	if err != nil {
		return err
	}
	if err := client.Err(); err != nil {
		return fmt.Errorf("cluster transport: %w", err)
	}
	if jsonlSink != nil {
		if err := jsonlSink.Err(); err != nil {
			return fmt.Errorf("jsonl sink: %w", err)
		}
		if jsonlFile != nil {
			if err := jsonlFile.Close(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("\nprocessed %d packets -> %d flows, %d alerts\n", st.Packets, st.Flows, st.Alerts)
	if pcapSrc != nil && pcapSrc.Skipped() > 0 {
		fmt.Printf("pcap: skipped %d frames outside the decode stack\n", pcapSrc.Skipped())
	}
	if pol.Mode == cyberhd.OverloadBounded {
		// Always printed in bounded mode (even when zero): the accounting
		// line CI greps, offered = processed + dropped. Byte-identical to
		// detect's line so the two paths diff clean.
		fmt.Printf("dropped %d packets (backpressure=%d new_flow_shed=%d tenant_rate=%d)\n",
			st.DroppedTotal(), st.Dropped[cyberhd.DropBackpressure],
			st.Dropped[cyberhd.DropNewFlowShed], st.Dropped[cyberhd.DropTenantRate])
	}
	sent := client.SentPerWorker()
	versions := client.WorkerVersions()
	for i, addr := range client.WorkerAddrs() {
		fmt.Printf("worker %s: %d packets, serving model version %d\n", addr, sent[i], versions[i])
	}
	if *metricsAddr != "" && *metricsLinger > 0 {
		fmt.Printf("rollup endpoint stays up %.0fs\n", *metricsLinger)
		time.Sleep(time.Duration(*metricsLinger * float64(time.Second)))
	}
	return nil
}

// lazyHandler lets the admin endpoint bind before the control plane
// exists: requests answer 503 until set stores the real handler (one
// atomic pointer swap, safe against in-flight requests).
type lazyHandler struct {
	h atomic.Pointer[http.Handler]
}

func (l *lazyHandler) set(h http.Handler) { l.h.Store(&h) }

func (l *lazyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := l.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, `{"error":"model control plane not ready (detector still training)"}`)
}
