// Command cyberhd is the training and evaluation CLI.
//
// Subcommands:
//
//	cyberhd gen -dataset nsl-kdd -n 20000 -out nsl.csv     # synthesize a dataset
//	cyberhd train -in nsl.csv                              # train + full report
//	cyberhd train -dataset unsw-nb15 -n 10000 -cycles 0    # synthetic, static HDC
//	cyberhd quantize -dataset nsl-kdd -n 8000              # accuracy across bitwidths
//	cyberhd faults -dataset nsl-kdd -rate 0.1 -bits 1      # robustness spot check
//	cyberhd detect -train 3000 -sessions 1000              # end-to-end live detection
//	cyberhd detect -shards 0 -batch 64                     # flow-sharded, one engine per core
//	cyberhd detect -width 4 -batch 64                      # packed 4-bit integer inference
package main

import (
	"flag"
	"fmt"
	"os"

	"cyberhd"
	"cyberhd/internal/bitpack"
	"cyberhd/internal/datasets"
	"cyberhd/internal/faults"
	"cyberhd/internal/metrics"
	"cyberhd/internal/netflow"
	"cyberhd/internal/pipeline"
	"cyberhd/internal/quantize"
	"cyberhd/internal/rng"
	"cyberhd/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "quantize":
		err = cmdQuantize(os.Args[2:])
	case "faults":
		err = cmdFaults(os.Args[2:])
	case "detect":
		err = cmdDetect(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyberhd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cyberhd <gen|train|quantize|faults|detect> [flags]")
	os.Exit(2)
}

// loadOrGen builds a dataset from -in CSV or synthesizes -dataset.
func loadOrGen(in, name string, n int, seed uint64) (*cyberhd.Dataset, error) {
	if in != "" {
		return cyberhd.LoadCSV(in)
	}
	d, ok := cyberhd.DatasetByName(name, n, seed)
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q (want one of %v)", name, datasets.PaperDatasets())
	}
	return d, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("dataset", "nsl-kdd", "dataset to synthesize")
	n := fs.Int("n", 10000, "samples (sessions for CIC sets)")
	seed := fs.Uint64("seed", 42, "random seed")
	out := fs.String("out", "", "output CSV path (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out required")
	}
	d, ok := cyberhd.DatasetByName(*name, *n, *seed)
	if !ok {
		return fmt.Errorf("unknown dataset %q", *name)
	}
	if err := cyberhd.SaveCSV(*out, d); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d samples × %d features, %d classes\n",
		*out, d.Len(), d.NumFeatures(), d.NumClasses())
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	in := fs.String("in", "", "input CSV (from gen); empty = synthesize")
	name := fs.String("dataset", "nsl-kdd", "dataset when -in is empty")
	n := fs.Int("n", 8000, "samples when synthesizing")
	seed := fs.Uint64("seed", 42, "random seed")
	dim := fs.Int("dim", 512, "physical hyperspace dimensionality")
	epochs := fs.Int("epochs", 8, "adaptive epochs per cycle")
	cycles := fs.Int("cycles", 7, "regeneration cycles (0 = static BaselineHD)")
	rate := fs.Float64("rate", 0.2, "regeneration rate R")
	lr := fs.Float64("lr", 0.1, "learning rate η")
	fs.Parse(args)

	d, err := loadOrGen(*in, *name, *n, *seed)
	if err != nil {
		return err
	}
	cfg := cyberhd.Config{
		Dim: *dim, Epochs: *epochs, RegenCycles: *cycles, RegenRate: *rate,
		LearningRate: *lr, TrainFraction: 0.75, Seed: *seed,
	}
	det, err := cyberhd.TrainDetector(d, cfg)
	if err != nil {
		return err
	}
	fmt.Println(det)
	for _, h := range det.Model.History {
		fmt.Printf("  cycle %d: dropped=%3d D*=%4d trainAcc=%.4f\n",
			h.Cycle, h.Dropped, h.EffectiveDim, h.TrainAcc)
	}

	// Full quality report on a fresh evaluation split.
	_, test, norm := d.NormalizedSplit(0.75, *seed)
	_ = norm
	conf := metrics.NewConfusion(d.ClassNames)
	preds := det.Model.PredictBatch(test.X)
	conf.AddAll(test.Y, preds)
	fmt.Printf("\naccuracy: %.4f   macro-F1: %.4f   detection: %.4f   false-alarm: %.4f\n",
		conf.Accuracy(), conf.MacroF1(), conf.DetectionRate(0), conf.FalseAlarmRate(0))
	fmt.Println("\nconfusion matrix:")
	fmt.Print(conf)
	fmt.Println("\nper-class report:")
	for _, r := range conf.Report() {
		fmt.Printf("  %-14s support=%5d P=%.3f R=%.3f F1=%.3f\n",
			r.Class, r.Support, r.Precision, r.Recall, r.F1)
	}
	return nil
}

func cmdQuantize(args []string) error {
	fs := flag.NewFlagSet("quantize", flag.ExitOnError)
	in := fs.String("in", "", "input CSV; empty = synthesize")
	name := fs.String("dataset", "nsl-kdd", "dataset when -in is empty")
	n := fs.Int("n", 8000, "samples when synthesizing")
	seed := fs.Uint64("seed", 42, "random seed")
	fs.Parse(args)

	d, err := loadOrGen(*in, *name, *n, *seed)
	if err != nil {
		return err
	}
	det, err := cyberhd.TrainDetector(d, cyberhd.DefaultConfig())
	if err != nil {
		return err
	}
	_, test, _ := d.NormalizedSplit(0.75, *seed)
	fmt.Printf("float32 accuracy: %.4f   class memory: %d bits\n",
		det.Model.Evaluate(test.X, test.Y),
		det.Model.NumClasses()*det.Model.Dim()*32)
	for _, w := range bitpack.Widths {
		q, err := quantize.FromCore(det.Model, w)
		if err != nil {
			return err
		}
		fmt.Printf("%2d-bit accuracy:  %.4f   class memory: %d bits\n",
			w, q.Evaluate(test.X, test.Y), q.MemoryBits())
	}
	return nil
}

func cmdFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	in := fs.String("in", "", "input CSV; empty = synthesize")
	name := fs.String("dataset", "nsl-kdd", "dataset when -in is empty")
	n := fs.Int("n", 8000, "samples when synthesizing")
	seed := fs.Uint64("seed", 42, "random seed")
	rate := fs.Float64("rate", 0.1, "fraction of elements hit by a bit flip")
	bits := fs.Int("bits", 1, "HDC element bitwidth")
	trials := fs.Int("trials", 5, "injection trials")
	fs.Parse(args)

	d, err := loadOrGen(*in, *name, *n, *seed)
	if err != nil {
		return err
	}
	det, err := cyberhd.TrainDetector(d, cyberhd.DefaultConfig())
	if err != nil {
		return err
	}
	_, test, _ := d.NormalizedSplit(0.75, *seed)
	q, err := quantize.FromCore(det.Model, bitpack.Width(*bits))
	if err != nil {
		return err
	}
	clean := q.Evaluate(test.X, test.Y)
	r := rng.New(*seed + 1)
	var lossSum float64
	for i := 0; i < *trials; i++ {
		hurt := q.Clone()
		nFlips := faults.InjectQuantized(hurt.Class, *rate, r)
		acc := hurt.Evaluate(test.X, test.Y)
		lossSum += clean - acc
		fmt.Printf("trial %d: %5d elements corrupted, accuracy %.4f (clean %.4f)\n",
			i+1, nFlips, acc, clean)
	}
	fmt.Printf("\nmean accuracy loss at %.0f%% error rate, %d-bit: %.2f pp\n",
		100**rate, *bits, 100*lossSum/float64(*trials))
	return nil
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	trainSessions := fs.Int("train", 3000, "training capture size (sessions)")
	liveSessions := fs.Int("sessions", 1000, "live capture size (sessions)")
	seed := fs.Uint64("seed", 42, "random seed")
	capture := fs.String("capture", "", "replay a binary capture instead of generating live traffic")
	shards := fs.Int("shards", 1, "engine shards (1 = single in-process engine; 0 = one per core)")
	batch := fs.Int("batch", 0, "micro-batch size per engine (0 = classify per flow)")
	width := fs.Int("width", 0, "quantized inference bitwidth: 1, 2, 4, 8, 16 or 32 (0 = float32)")
	verbose := fs.Bool("v", false, "print every alert")
	fs.Parse(args)
	if *width != 0 && !bitpack.Width(*width).Valid() {
		return fmt.Errorf("detect: -width %d not one of %v", *width, bitpack.Widths)
	}

	det, err := cyberhd.TrainDetector(cyberhd.CICIDS2017(*trainSessions, *seed), cyberhd.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Println("detector:", det)

	var live *cyberhd.TrafficStream
	if *capture != "" {
		pkts, err := netflow.LoadCapture(*capture)
		if err != nil {
			return err
		}
		live = &cyberhd.TrafficStream{Packets: pkts, Labels: map[netflow.FlowKey]traffic.Label{}}
	} else {
		live = cyberhd.GenerateTraffic(cyberhd.TrafficConfig{Sessions: *liveSessions, Seed: *seed + 1})
	}

	// Score verdicts against ground truth where available.
	conf := metrics.NewConfusion(det.ClassNames)
	scored := 0
	onAlert := func(a cyberhd.Alert) {
		if *verbose {
			fmt.Printf("ALERT t=%9.2fs %-12s %4d pkts %9.0f bytes\n",
				a.Time, a.ClassName, a.Flow.TotalPackets(), a.Flow.TotalBytes())
		}
	}
	cfg := cyberhd.EngineConfig{
		Model:      det.Model,
		Normalizer: det.Normalizer,
		ClassNames: det.ClassNames,
		BatchSize:  *batch,
		Quantize:   cyberhd.Width(*width),
		OnAlert:    onAlert,
		Shards:     *shards,
	}
	if *width != 0 {
		fmt.Printf("quantized inference: %d-bit packed class memory\n", *width)
	}
	// feed/finish abstract over the single-threaded engine and the
	// flow-sharded multi-core one so the replay loop below is shared.
	var feed func(p *cyberhd.Packet)
	var finish func() pipeline.Stats
	if *shards == 1 {
		eng, err := cyberhd.NewEngine(cfg)
		if err != nil {
			return err
		}
		feed = eng.Feed
		finish = func() pipeline.Stats { eng.Flush(); return eng.Stats() }
	} else {
		seng, err := cyberhd.NewShardedEngine(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("sharded engine: %d flow-hash shards\n", seng.NumShards())
		feed = func(p *cyberhd.Packet) { seng.Feed(*p) }
		finish = func() pipeline.Stats { seng.Close(); return seng.Stats() }
	}
	// A parallel label-aware assembler scores verdicts against ground
	// truth, using the same inference the engine serves: the packed
	// quantized model when -width is set, float32 otherwise.
	scoreModel := pipeline.Classifier(det.Model)
	if *width != 0 {
		q, err := quantize.FromCore(det.Model, bitpack.Width(*width))
		if err != nil {
			return err
		}
		scoreModel = q
	}
	a := netflow.NewAssembler(120, 1, func(f *netflow.Flow) {
		label, ok := live.Labels[f.Key]
		if !ok {
			return
		}
		feat := f.Features()
		x := make([]float32, len(feat))
		copy(x, feat)
		det.Normalizer.ApplyVec(x)
		conf.Add(int(label), scoreModel.Predict(x))
		scored++
	})
	for i := range live.Packets {
		feed(&live.Packets[i])
		a.Add(&live.Packets[i])
	}
	st := finish()
	a.Flush()
	fmt.Printf("\nprocessed %d packets -> %d flows, %d alerts\n", st.Packets, st.Flows, st.Alerts)
	if scored > 0 {
		fmt.Printf("scored %d labeled flows: accuracy %.4f, detection rate %.4f, false alarms %.4f\n",
			scored, conf.Accuracy(), conf.DetectionRate(0), conf.FalseAlarmRate(0))
		fmt.Println("\nconfusion matrix:")
		fmt.Print(conf)
	}
	return nil
}
