// Command nidsgen synthesizes labeled network traffic and flow-feature
// datasets from the packet-level simulator.
//
// Usage:
//
//	nidsgen -sessions 5000 -out flows.csv            # CIC-2017-style flow CSV
//	nidsgen -sessions 5000 -mix benign=0.9,dos=0.1   # custom class mix
//	nidsgen -sessions 1000 -stats                    # print capture statistics only
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cyberhd/internal/datasets"
	"cyberhd/internal/netflow"
	"cyberhd/internal/traffic"
)

func main() {
	sessions := flag.Int("sessions", 2000, "number of traffic sessions")
	seed := flag.Uint64("seed", 42, "random seed")
	out := flag.String("out", "", "output flow-feature CSV path")
	capture := flag.String("capture", "", "also write the raw packet log (binary capture) to this path")
	replay := flag.String("replay", "", "read packets from a capture file instead of generating (stats/CSV from replayed flows are unlabeled-benign)")
	mixFlag := flag.String("mix", "", "class mix, e.g. benign=0.8,dos=0.1,portscan=0.1")
	stats := flag.Bool("stats", false, "print capture statistics")
	flag.Parse()

	cfg := traffic.Config{Sessions: *sessions, Seed: *seed}
	if *mixFlag != "" {
		mix, err := parseMix(*mixFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nidsgen:", err)
			os.Exit(1)
		}
		cfg.Mix = mix
	}
	var stream *traffic.Stream
	if *replay != "" {
		pkts, err := netflow.LoadCapture(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nidsgen:", err)
			os.Exit(1)
		}
		// Replayed captures carry no ground truth; mark every flow benign
		// so the feature table is still usable (e.g. for inference runs).
		labels := make(map[netflow.FlowKey]traffic.Label)
		for i := range pkts {
			key, _ := netflow.KeyOf(&pkts[i])
			labels[key] = traffic.Benign
		}
		stream = &traffic.Stream{Packets: pkts, Labels: labels}
	} else {
		stream = traffic.Generate(cfg)
	}
	ds := datasets.FromStream("nidsgen", stream, traffic.LabelNames(),
		func(l traffic.Label) int { return int(l) })
	if *capture != "" {
		if err := netflow.SaveCapture(*capture, stream.Packets); err != nil {
			fmt.Fprintln(os.Stderr, "nidsgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote capture %s: %d packets\n", *capture, len(stream.Packets))
	}

	if *stats || *out == "" {
		printStats(stream, ds)
	}
	if *out != "" {
		if err := datasets.SaveCSV(*out, ds); err != nil {
			fmt.Fprintln(os.Stderr, "nidsgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d flows × %d features\n", *out, ds.Len(), ds.NumFeatures())
	}
}

func parseMix(s string) (map[traffic.Label]float64, error) {
	byName := map[string]traffic.Label{}
	for i, n := range traffic.LabelNames() {
		byName[n] = traffic.Label(i)
	}
	mix := map[traffic.Label]float64{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q", part)
		}
		label, ok := byName[strings.TrimSpace(kv[0])]
		if !ok {
			return nil, fmt.Errorf("unknown label %q (want one of %v)", kv[0], traffic.LabelNames())
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad weight %q", kv[1])
		}
		mix[label] = w
	}
	return mix, nil
}

func printStats(stream *traffic.Stream, ds *datasets.Dataset) {
	fmt.Printf("packets: %d   flows: %d   features: %d\n",
		len(stream.Packets), ds.Len(), ds.NumFeatures())
	counts := ds.ClassCounts()
	for i, name := range ds.ClassNames {
		if counts[i] > 0 {
			fmt.Printf("  %-14s %6d flows (%5.1f%%)\n", name, counts[i],
				100*float64(counts[i])/float64(ds.Len()))
		}
	}
	if len(stream.Packets) > 0 {
		last := stream.Packets[len(stream.Packets)-1].Time
		fmt.Printf("capture window: %.1f s   mean rate: %.0f pkt/s\n",
			last, float64(len(stream.Packets))/last)
	}
}
