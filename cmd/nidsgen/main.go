// Command nidsgen synthesizes labeled network traffic and flow-feature
// datasets from the packet-level simulator.
//
// Usage:
//
//	nidsgen -sessions 5000 -out flows.csv            # CIC-2017-style flow CSV
//	nidsgen -sessions 5000 -mix benign=0.9,dos=0.1   # custom class mix
//	nidsgen -sessions 1000 -stats                    # print capture statistics only
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"cyberhd/internal/datasets"
	"cyberhd/internal/netflow"
	"cyberhd/internal/traffic"
)

func main() {
	sessions := flag.Int("sessions", 2000, "number of traffic sessions")
	seed := flag.Uint64("seed", 42, "random seed")
	out := flag.String("out", "", "output flow-feature CSV path")
	capture := flag.String("capture", "", "also write the raw packet log (binary capture) to this path (generation only)")
	pcapOut := flag.String("pcap", "", "also write the traffic as a classic PCAP (nanosecond Ethernet) to this path (generation only; timestamps round to the nanosecond grid so capture and pcap replay identically)")
	v6Frac := flag.Float64("v6", 0, "rewrite this fraction of generated flows into an IPv6 site (both endpoints embedded in 2001:db8::/32, deterministic per flow)")
	vlanID := flag.Int("vlan", 0, "tag every generated packet with this 802.1Q VLAN ID (1-4094)")
	replay := flag.String("replay", "", "read packets from a capture, PCAP or pcapng file instead of generating — sniffed by magic, streamed in O(1) memory (replayed flows are unlabeled-benign)")
	mixFlag := flag.String("mix", "", "class mix, e.g. benign=0.8,dos=0.1,portscan=0.1")
	stats := flag.Bool("stats", false, "print capture statistics")
	flag.Parse()

	if *v6Frac < 0 || *v6Frac > 1 {
		fmt.Fprintln(os.Stderr, "nidsgen: -v6 must be a fraction in [0,1]")
		os.Exit(1)
	}
	if *vlanID < 0 || *vlanID > 4094 {
		fmt.Fprintln(os.Stderr, "nidsgen: -vlan must be a 802.1Q VLAN ID in 1..4094 (0 = untagged)")
		os.Exit(1)
	}
	cfg := traffic.Config{Sessions: *sessions, Seed: *seed}
	if *mixFlag != "" {
		mix, err := parseMix(*mixFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nidsgen:", err)
			os.Exit(1)
		}
		cfg.Mix = mix
	}
	var ds *datasets.Dataset
	var nPackets int
	var lastTime float64
	if *replay != "" {
		if *capture != "" || *pcapOut != "" || *v6Frac > 0 || *vlanID > 0 {
			fmt.Fprintln(os.Stderr, "nidsgen: -capture, -pcap, -v6 and -vlan require generation (replay streams the file, it does not rewrite it)")
			os.Exit(1)
		}
		// Stream the file record-by-record — a multi-gigabyte log
		// assembles into flows without ever living in memory. Replayed
		// captures carry no ground truth; every flow is labeled benign so
		// the feature table is still usable (e.g. for inference runs).
		cf, skipped, err := openReplay(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nidsgen:", err)
			os.Exit(1)
		}
		defer cf.Close()
		tap := newTapSource(cf)
		ds, err = datasets.FromSource("nidsgen", tap, nil, traffic.LabelNames(),
			func(l traffic.Label) int { return int(l) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "nidsgen:", err)
			os.Exit(1)
		}
		nPackets, lastTime = tap.n, tap.last
		if n := skipped(); n > 0 {
			fmt.Fprintf(os.Stderr, "replay: skipped %d frames outside the decode stack\n", n)
		}
	} else {
		stream := traffic.Generate(cfg)
		rewriteTraffic(stream.Packets, *v6Frac, uint16(*vlanID), *pcapOut != "")
		ds = datasets.FromStream("nidsgen", stream, traffic.LabelNames(),
			func(l traffic.Label) int { return int(l) })
		nPackets = len(stream.Packets)
		if nPackets > 0 {
			lastTime = stream.Packets[nPackets-1].Time
		}
		if *capture != "" {
			// Stream the log through CaptureWriter — O(1) append, and on a
			// seekable file the output is byte-identical to SaveCapture.
			if err := writeCapture(*capture, stream.Packets); err != nil {
				fmt.Fprintln(os.Stderr, "nidsgen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote capture %s: %d packets\n", *capture, nPackets)
		}
		if *pcapOut != "" {
			if err := writePCAPFile(*pcapOut, stream.Packets); err != nil {
				fmt.Fprintln(os.Stderr, "nidsgen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote pcap %s: %d packets\n", *pcapOut, nPackets)
		}
	}

	if *stats || *out == "" {
		printStats(nPackets, lastTime, ds)
	}
	if *out != "" {
		if err := datasets.SaveCSV(*out, ds); err != nil {
			fmt.Fprintln(os.Stderr, "nidsgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d flows × %d features\n", *out, ds.Len(), ds.NumFeatures())
	}
}

// writeCapture writes packets to path, auto-selecting the v1 record for
// pure-IPv4 untagged traffic (byte-identical to the pre-v2 format) and
// the v2 record when any packet carries IPv6 or a VLAN tag.
func writeCapture(path string, packets []netflow.Packet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := netflow.WriteCapture(f, packets); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writePCAPFile writes packets as a classic nanosecond-resolution
// Ethernet PCAP — the decode stack reads it back bit-identically.
func writePCAPFile(path string, packets []netflow.Packet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := netflow.WritePCAP(f, packets); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// rewriteTraffic applies the generator's address-plane knobs in place:
// a deterministic per-flow IPv6 rewrite (both endpoints move together so
// no packet mixes families), an 802.1Q tag, and — when a PCAP is being
// written — rounding timestamps to the nanosecond grid so the capture
// and the pcap replay bit-identically.
func rewriteTraffic(packets []netflow.Packet, v6Frac float64, vlan uint16, forPCAP bool) {
	threshold := uint64(v6Frac * (1 << 16))
	for i := range packets {
		p := &packets[i]
		if threshold > 0 && flowElect(p.SrcIP, p.DstIP) < threshold {
			p.SrcIP, p.DstIP = toV6Site(p.SrcIP), toV6Site(p.DstIP)
			// The IPv4 header (20 B) grows to the fixed IPv6 header (40 B),
			// in both the header accounting and the on-wire packet size.
			p.HeaderLen += 20
			p.Length += 20
		}
		if vlan > 0 {
			p.VLAN = vlan
		}
		if forPCAP {
			p.Time = netflow.RoundToNanos(p.Time)
		}
	}
}

// flowElect hashes the unordered endpoint pair into [0, 1<<16) — the
// same value for both directions, so every packet of a flow lands on
// the same side of the -v6 threshold.
func flowElect(src, dst netflow.Addr) uint64 {
	a, b := src.V4(), dst.V4()
	if b < a {
		a, b = b, a
	}
	h := uint64(0xcbf29ce484222325)
	for _, v := range [...]uint32{a, b} {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(v >> s))
			h *= 0x100000001b3
		}
	}
	return h % (1 << 16)
}

// toV6Site embeds a v4 host in the 2001:db8::/32 documentation site.
func toV6Site(a netflow.Addr) netflow.Addr {
	var b [16]byte
	b[0], b[1], b[2], b[3] = 0x20, 0x01, 0x0d, 0xb8
	v := a.V4()
	b[12], b[13], b[14], b[15] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	return netflow.AddrFrom16(b)
}

// openReplay opens path for streaming replay, sniffing the four-byte
// magic to pick the reader: the internal binary capture, or classic
// PCAP / pcapng through the Ethernet/VLAN/IP decode stack. The returned
// func reports frames the pcap decoder skipped (always zero for
// captures).
func openReplay(path string) (interface {
	netflow.PacketSource
	Close() error
}, func() int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var magic [4]byte
	_, rerr := io.ReadFull(f, magic[:])
	f.Close()
	if rerr != nil {
		return nil, nil, fmt.Errorf("%s: too short to carry a capture or pcap magic", path)
	}
	// The internal capture leads with 0xCBD0CAF7 little-endian; anything
	// else goes to the pcap front door, which recognizes classic PCAP in
	// both endiannesses and pcapng, and rejects the rest by name.
	if binary.LittleEndian.Uint32(magic[:]) == 0xCBD0CAF7 {
		cf, err := netflow.OpenCapture(path)
		if err != nil {
			return nil, nil, err
		}
		return cf, func() int { return 0 }, nil
	}
	pf, err := netflow.OpenPCAP(path)
	if err != nil {
		return nil, nil, err
	}
	return pf, pf.Skipped, nil
}

// tapSource forwards a PacketSource while counting packets and tracking
// the last capture timestamp, so replay statistics don't require holding
// the packet log in memory. A long replay reports progress to stderr
// every few wall-clock seconds (the clock is sampled every 64 Ki packets
// to keep the per-packet cost at one counter increment).
type tapSource struct {
	src     netflow.PacketSource
	n       int
	last    float64
	started time.Time
	nextAt  time.Time
}

// progressEvery is the wall-clock cadence of replay progress lines.
const progressEvery = 5 * time.Second

// newTapSource wraps src with counting and periodic stderr progress.
func newTapSource(src netflow.PacketSource) *tapSource {
	now := time.Now()
	return &tapSource{src: src, started: now, nextAt: now.Add(progressEvery)}
}

// Next delegates to the wrapped source, recording count and last time.
func (t *tapSource) Next(p *netflow.Packet) error {
	err := t.src.Next(p)
	if err == nil {
		t.n++
		t.last = p.Time
		if t.n&0xFFFF == 0 {
			if now := time.Now(); now.After(t.nextAt) {
				elapsed := now.Sub(t.started).Seconds()
				fmt.Fprintf(os.Stderr, "replay: %d packets, capture t=%.1fs (%.0f pkt/s)\n",
					t.n, t.last, float64(t.n)/elapsed)
				t.nextAt = now.Add(progressEvery)
			}
		}
	}
	return err
}

func parseMix(s string) (map[traffic.Label]float64, error) {
	byName := map[string]traffic.Label{}
	for i, n := range traffic.LabelNames() {
		byName[n] = traffic.Label(i)
	}
	mix := map[traffic.Label]float64{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q", part)
		}
		label, ok := byName[strings.TrimSpace(kv[0])]
		if !ok {
			return nil, fmt.Errorf("unknown label %q (want one of %v)", kv[0], traffic.LabelNames())
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad weight %q", kv[1])
		}
		mix[label] = w
	}
	return mix, nil
}

func printStats(packets int, lastTime float64, ds *datasets.Dataset) {
	fmt.Printf("packets: %d   flows: %d   features: %d\n",
		packets, ds.Len(), ds.NumFeatures())
	counts := ds.ClassCounts()
	for i, name := range ds.ClassNames {
		if counts[i] > 0 {
			fmt.Printf("  %-14s %6d flows (%5.1f%%)\n", name, counts[i],
				100*float64(counts[i])/float64(ds.Len()))
		}
	}
	if packets > 0 && lastTime > 0 {
		fmt.Printf("capture window: %.1f s   mean rate: %.0f pkt/s\n",
			lastTime, float64(packets)/lastTime)
	}
}
