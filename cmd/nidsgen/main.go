// Command nidsgen synthesizes labeled network traffic and flow-feature
// datasets from the packet-level simulator.
//
// Usage:
//
//	nidsgen -sessions 5000 -out flows.csv            # CIC-2017-style flow CSV
//	nidsgen -sessions 5000 -mix benign=0.9,dos=0.1   # custom class mix
//	nidsgen -sessions 1000 -stats                    # print capture statistics only
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cyberhd/internal/datasets"
	"cyberhd/internal/netflow"
	"cyberhd/internal/traffic"
)

func main() {
	sessions := flag.Int("sessions", 2000, "number of traffic sessions")
	seed := flag.Uint64("seed", 42, "random seed")
	out := flag.String("out", "", "output flow-feature CSV path")
	capture := flag.String("capture", "", "also write the raw packet log (binary capture) to this path (generation only)")
	replay := flag.String("replay", "", "read packets from a capture file instead of generating, streamed in O(1) memory (replayed flows are unlabeled-benign)")
	mixFlag := flag.String("mix", "", "class mix, e.g. benign=0.8,dos=0.1,portscan=0.1")
	stats := flag.Bool("stats", false, "print capture statistics")
	flag.Parse()

	cfg := traffic.Config{Sessions: *sessions, Seed: *seed}
	if *mixFlag != "" {
		mix, err := parseMix(*mixFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nidsgen:", err)
			os.Exit(1)
		}
		cfg.Mix = mix
	}
	var ds *datasets.Dataset
	var nPackets int
	var lastTime float64
	if *replay != "" {
		if *capture != "" {
			fmt.Fprintln(os.Stderr, "nidsgen: -capture requires generation (replay streams the capture, it does not rewrite it)")
			os.Exit(1)
		}
		// Stream the capture record-by-record — a multi-gigabyte log
		// assembles into flows without ever living in memory. Replayed
		// captures carry no ground truth; every flow is labeled benign so
		// the feature table is still usable (e.g. for inference runs).
		cf, err := netflow.OpenCapture(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nidsgen:", err)
			os.Exit(1)
		}
		defer cf.Close()
		tap := newTapSource(cf)
		ds, err = datasets.FromSource("nidsgen", tap, nil, traffic.LabelNames(),
			func(l traffic.Label) int { return int(l) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "nidsgen:", err)
			os.Exit(1)
		}
		nPackets, lastTime = tap.n, tap.last
	} else {
		stream := traffic.Generate(cfg)
		ds = datasets.FromStream("nidsgen", stream, traffic.LabelNames(),
			func(l traffic.Label) int { return int(l) })
		nPackets = len(stream.Packets)
		if nPackets > 0 {
			lastTime = stream.Packets[nPackets-1].Time
		}
		if *capture != "" {
			// Stream the log through CaptureWriter — O(1) append, and on a
			// seekable file the output is byte-identical to SaveCapture.
			if err := writeCapture(*capture, stream.Packets); err != nil {
				fmt.Fprintln(os.Stderr, "nidsgen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote capture %s: %d packets\n", *capture, nPackets)
		}
	}

	if *stats || *out == "" {
		printStats(nPackets, lastTime, ds)
	}
	if *out != "" {
		if err := datasets.SaveCSV(*out, ds); err != nil {
			fmt.Fprintln(os.Stderr, "nidsgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d flows × %d features\n", *out, ds.Len(), ds.NumFeatures())
	}
}

// writeCapture streams packets to path one record at a time.
func writeCapture(path string, packets []netflow.Packet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw, err := netflow.NewCaptureWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	for i := range packets {
		if err := cw.Write(&packets[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := cw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// tapSource forwards a PacketSource while counting packets and tracking
// the last capture timestamp, so replay statistics don't require holding
// the packet log in memory. A long replay reports progress to stderr
// every few wall-clock seconds (the clock is sampled every 64 Ki packets
// to keep the per-packet cost at one counter increment).
type tapSource struct {
	src     netflow.PacketSource
	n       int
	last    float64
	started time.Time
	nextAt  time.Time
}

// progressEvery is the wall-clock cadence of replay progress lines.
const progressEvery = 5 * time.Second

// newTapSource wraps src with counting and periodic stderr progress.
func newTapSource(src netflow.PacketSource) *tapSource {
	now := time.Now()
	return &tapSource{src: src, started: now, nextAt: now.Add(progressEvery)}
}

// Next delegates to the wrapped source, recording count and last time.
func (t *tapSource) Next(p *netflow.Packet) error {
	err := t.src.Next(p)
	if err == nil {
		t.n++
		t.last = p.Time
		if t.n&0xFFFF == 0 {
			if now := time.Now(); now.After(t.nextAt) {
				elapsed := now.Sub(t.started).Seconds()
				fmt.Fprintf(os.Stderr, "replay: %d packets, capture t=%.1fs (%.0f pkt/s)\n",
					t.n, t.last, float64(t.n)/elapsed)
				t.nextAt = now.Add(progressEvery)
			}
		}
	}
	return err
}

func parseMix(s string) (map[traffic.Label]float64, error) {
	byName := map[string]traffic.Label{}
	for i, n := range traffic.LabelNames() {
		byName[n] = traffic.Label(i)
	}
	mix := map[traffic.Label]float64{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q", part)
		}
		label, ok := byName[strings.TrimSpace(kv[0])]
		if !ok {
			return nil, fmt.Errorf("unknown label %q (want one of %v)", kv[0], traffic.LabelNames())
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad weight %q", kv[1])
		}
		mix[label] = w
	}
	return mix, nil
}

func printStats(packets int, lastTime float64, ds *datasets.Dataset) {
	fmt.Printf("packets: %d   flows: %d   features: %d\n",
		packets, ds.Len(), ds.NumFeatures())
	counts := ds.ClassCounts()
	for i, name := range ds.ClassNames {
		if counts[i] > 0 {
			fmt.Printf("  %-14s %6d flows (%5.1f%%)\n", name, counts[i],
				100*float64(counts[i])/float64(ds.Len()))
		}
	}
	if packets > 0 && lastTime > 0 {
		fmt.Printf("capture window: %.1f s   mean rate: %.0f pkt/s\n",
			lastTime, float64(packets)/lastTime)
	}
}
