// Command doclint enforces the repository's godoc contract: every
// exported identifier in the audited packages — top-level functions,
// methods, types, consts, vars, struct fields and interface methods —
// must carry a doc comment. CI runs it after gofmt and vet; it exits
// non-zero listing every undocumented identifier.
//
//	go run ./cmd/doclint              # audit the default package set
//	go run ./cmd/doclint ./internal/hdc ./internal/core
//
// The default set is the serving surface: the cyberhd facade plus
// internal/bitpack, internal/quantize and internal/pipeline.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

// defaultDirs is the audited package set when no arguments are given.
var defaultDirs = []string{".", "./internal/bitpack", "./internal/quantize", "./internal/pipeline"}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var problems []string
	for _, dir := range dirs {
		ps, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(1)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifiers without doc comments:\n", len(problems))
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, " ", p)
		}
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file directly in dir and returns one
// problem line per undocumented exported identifier.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "func", funcName(d))
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return problems, nil
}

// funcName renders a function or method name, including the receiver type.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	recv := d.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// lintGenDecl checks type, const and var declarations. A doc comment on
// the grouped declaration covers its specs; an undocumented spec inside an
// undocumented group is reported per exported name. Struct fields and
// interface methods of exported types are audited too (doc comment above
// or line comment beside either counts).
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if !ts.Name.IsExported() {
				continue
			}
			if d.Doc == nil && ts.Doc == nil {
				report(ts.Pos(), "type", ts.Name.Name)
			}
			switch t := ts.Type.(type) {
			case *ast.StructType:
				for _, f := range t.Fields.List {
					for _, n := range f.Names {
						if n.IsExported() && f.Doc == nil && f.Comment == nil {
							report(f.Pos(), "field", ts.Name.Name+"."+n.Name)
						}
					}
				}
			case *ast.InterfaceType:
				for _, m := range t.Methods.List {
					for _, n := range m.Names {
						if n.IsExported() && m.Doc == nil && m.Comment == nil {
							report(m.Pos(), "interface method", ts.Name.Name+"."+n.Name)
						}
					}
				}
			}
		}
	case token.CONST, token.VAR:
		kind := "const"
		if d.Tok == token.VAR {
			kind = "var"
		}
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			if d.Doc != nil || vs.Doc != nil || vs.Comment != nil {
				continue
			}
			for _, n := range vs.Names {
				if n.IsExported() {
					report(n.Pos(), kind, n.Name)
				}
			}
		}
	}
}
