package cyberhd

import (
	"bytes"
	"context"
	"net/http"
	"runtime"
	"strings"
	"testing"
)

// serveDetector trains one CIC detector shared by the serving tests.
func serveDetector(t *testing.T) *Detector {
	t.Helper()
	det, err := TrainDetector(CICIDS2017(1200, 3), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// TestEngineOptionsCompose pins the builder form of EngineConfig: every
// option lands on its field, over the detector's base config.
func TestEngineOptionsCompose(t *testing.T) {
	det := serveDetector(t)
	onAlert := func(Alert) {}
	sink := SinkFunc(func(Alert) {})
	cfg := det.EngineConfig(
		WithBatchSize(64),
		WithQuantized(W4),
		WithShards(8),
		WithShardBuffer(256),
		WithBenignClass(0),
		WithFlowTimeouts(60, 2),
		WithOnAlert(onAlert),
		WithSinks(sink),
		WithTickInterval(5),
	)
	if cfg.Model != det.Model || cfg.Normalizer != det.Normalizer {
		t.Fatal("detector base config not applied")
	}
	if cfg.BatchSize != 64 || cfg.Quantize != W4 || cfg.Shards != 8 || cfg.ShardBuffer != 256 {
		t.Fatalf("engine options not applied: %+v", cfg)
	}
	if cfg.IdleTimeout != 60 || cfg.ActivityGap != 2 || cfg.TickInterval != 5 {
		t.Fatalf("timing options not applied: %+v", cfg)
	}
	if cfg.OnAlert == nil || len(cfg.Sinks) != 1 {
		t.Fatal("alert options not applied")
	}
	// WithShards(0) resolves to one shard per core at option time, so the
	// stored config says what will actually run.
	if got := det.EngineConfig(WithShards(0)).Shards; got != runtime.GOMAXPROCS(0) {
		t.Fatalf("WithShards(0) = %d shards, want GOMAXPROCS", got)
	}
}

// TestServeMatchesDirectEngine pins the one-call path end to end: Serve
// over a slice source produces stats bit-identical to hand-driving the
// engine, and the JSONL sink captures every alert.
func TestServeMatchesDirectEngine(t *testing.T) {
	det := serveDetector(t)
	live := GenerateTraffic(TrafficConfig{Sessions: 300, Seed: 77})

	eng, err := NewEngine(det.EngineConfig(WithBatchSize(32)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range live.Packets {
		eng.Feed(live.Packets[i])
	}
	eng.Close()
	want := eng.Stats()

	var jsonl bytes.Buffer
	sink := NewJSONLSink(&jsonl)
	got, err := det.Serve(context.Background(), NewSliceSource(live.Packets),
		WithBatchSize(32), WithSinks(sink))
	if err != nil {
		t.Fatal(err)
	}
	if got.Packets != want.Packets || got.Flows != want.Flows || got.Alerts != want.Alerts {
		t.Fatalf("Serve %+v != direct %+v", got, want)
	}
	for c := range want.ByClass {
		if got.ByClass[c] != want.ByClass[c] {
			t.Fatalf("ByClass[%d]: serve %d != direct %d", c, got.ByClass[c], want.ByClass[c])
		}
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(jsonl.String(), "\n")
	if lines != got.Alerts {
		t.Fatalf("JSONL sink wrote %d lines for %d alerts", lines, got.Alerts)
	}
	if got.Alerts == 0 {
		t.Fatal("degenerate capture: no alerts")
	}
}

// TestServeShardedQuantized exercises the one-call path at its heaviest:
// flow-sharded, micro-batched, 8-bit quantized — stats must match the
// plain float engine bit-for-bit except where quantization changes
// verdicts, so pin against a sharded direct drive at the same width.
func TestServeShardedQuantized(t *testing.T) {
	det := serveDetector(t)
	live := GenerateTraffic(TrafficConfig{Sessions: 300, Seed: 77})

	sh, err := NewShardedEngine(det.EngineConfig(WithShards(4), WithBatchSize(32), WithQuantized(W8)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range live.Packets {
		sh.Feed(live.Packets[i])
	}
	sh.Close()
	want := sh.Stats()

	got, err := Serve(context.Background(), det, NewSliceSource(live.Packets),
		WithShards(4), WithBatchSize(32), WithQuantized(W8))
	if err != nil {
		t.Fatal(err)
	}
	if got.Flows != want.Flows || got.Alerts != want.Alerts {
		t.Fatalf("Serve %+v != direct sharded %+v", got, want)
	}
}

// TestServeCancel pins that the facade surfaces cancellation with the
// partial stats.
func TestServeCancel(t *testing.T) {
	det := serveDetector(t)
	live := GenerateTraffic(TrafficConfig{Sessions: 300, Seed: 77})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first packet
	st, err := det.Serve(ctx, NewSliceSource(live.Packets))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Packets != 0 {
		t.Fatalf("fed %d packets under a dead context", st.Packets)
	}
}

// TestServeReplayTraffic drives Serve from the traffic generator's
// live-replay source (unpaced) and pins equivalence with the slice source.
func TestServeReplayTraffic(t *testing.T) {
	det := serveDetector(t)
	live := GenerateTraffic(TrafficConfig{Sessions: 300, Seed: 77})
	a, err := det.Serve(context.Background(), NewSliceSource(live.Packets))
	if err != nil {
		t.Fatal(err)
	}
	b, err := det.Serve(context.Background(), ReplayTraffic(live, 0))
	if err != nil {
		t.Fatal(err)
	}
	if a.Packets != b.Packets || a.Flows != b.Flows || a.Alerts != b.Alerts {
		t.Fatalf("replay source %+v != slice source %+v", b, a)
	}
}

// TestServeWithMetrics runs the one-call metrics path: the admin endpoint
// is scrapeable during the run (healthz) and its final counters match the
// returned stats exactly; Prometheus output is well-formed.
func TestServeWithMetrics(t *testing.T) {
	det := serveDetector(t)
	live := GenerateTraffic(TrafficConfig{Sessions: 300, Seed: 77})

	// Share a collector so counters stay readable after the endpoint
	// closed with the run.
	tel := NewTelemetry(det.ClassNames)
	var snaps []TelemetrySnapshot
	st, err := det.ServeWithMetrics(context.Background(), "127.0.0.1:0", NewSliceSource(live.Packets),
		WithTelemetry(tel), WithBatchSize(16),
		WithProgress(5, func(s TelemetrySnapshot) { snaps = append(snaps, s) }))
	if err != nil {
		t.Fatal(err)
	}
	final := tel.Snapshot()
	if int(final.Packets) != st.Packets || int(final.Flows) != st.Flows || int(final.Alerts) != st.Alerts {
		t.Fatalf("collector %+v != stats %+v", final, st)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	if last := snaps[len(snaps)-1]; last.Packets != final.Packets {
		t.Fatalf("final progress snapshot %d packets, want %d", last.Packets, final.Packets)
	}
	var prom strings.Builder
	if err := final.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "cyberhd_flows_total") {
		t.Fatalf("prometheus output missing flows:\n%s", prom.String())
	}

	// The live endpoint itself: scrape while a (tiny) run is in flight —
	// ListenAndServe guarantees the listener is accepting before Serve
	// pumps, so /healthz during the run can never miss.
	tel2 := NewTelemetry(det.ClassNames)
	srv, err := ServeMetrics("127.0.0.1:0", tel2)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Serve(context.Background(), NewSliceSource(live.Packets), WithTelemetry(tel2)); err != nil {
		t.Fatal(err)
	}
	if tel2.Snapshot().Packets == 0 {
		t.Fatal("shared collector saw no traffic")
	}
}

// TestServeWithMetricsBadAddr pins the error path: an unbindable address
// fails up front instead of serving blind.
func TestServeWithMetricsBadAddr(t *testing.T) {
	det := serveDetector(t)
	live := GenerateTraffic(TrafficConfig{Sessions: 10, Seed: 1})
	if _, err := det.ServeWithMetrics(context.Background(), "256.0.0.1:99999", NewSliceSource(live.Packets)); err == nil {
		t.Fatal("bound an impossible address")
	}
}

// TestOverloadOptionsMatchStruct pins satellite-free equivalence of the
// two construction paths: WithOverloadPolicy/WithTenantKey/
// WithDropCallback land on the same EngineConfig.Overload fields a
// struct-literal caller sets, both paths install the same Gate through
// NewServeRunner, and a permissive bounded policy over the synchronous
// engine serves verdicts bit-identical to the lossless default with
// every drop counter at zero.
func TestOverloadOptionsMatchStruct(t *testing.T) {
	det := serveDetector(t)
	live := GenerateTraffic(TrafficConfig{Sessions: 200, Seed: 31})

	tenant := func(p *Packet) uint64 { return uint64(p.SrcIP.V4()) }
	onDrop := func(Packet, DropReason) {}
	viaOpts := det.EngineConfig(
		WithOverloadPolicy(OverloadPolicy{Mode: OverloadBounded, TenantRate: 5}),
		WithTenantKey(tenant),
		WithDropCallback(onDrop),
	)
	viaStruct := det.EngineConfig()
	viaStruct.Overload = OverloadPolicy{Mode: OverloadBounded, TenantRate: 5}
	viaStruct.Overload.TenantKey = tenant
	viaStruct.Overload.OnDrop = onDrop

	if viaOpts.Overload.Mode != viaStruct.Overload.Mode ||
		viaOpts.Overload.TenantRate != viaStruct.Overload.TenantRate {
		t.Fatalf("option path %+v != struct path %+v", viaOpts.Overload, viaStruct.Overload)
	}
	if viaOpts.Overload.TenantKey == nil || viaOpts.Overload.OnDrop == nil {
		t.Fatal("WithTenantKey/WithDropCallback did not land on the policy")
	}
	for name, cfg := range map[string]EngineConfig{"options": viaOpts, "struct": viaStruct} {
		r, err := NewServeRunner(cfg, NewSliceSource(nil))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := r.Stream.(*Gate); !ok {
			t.Fatalf("%s path: bounded policy built %T, want *Gate", name, r.Stream)
		}
		r.Stream.Close()
	}

	// Functional equivalence: lossless default vs permissive bounded
	// policy (no tenant rate, synchronous engine that always admits).
	want, err := det.Serve(context.Background(), NewSliceSource(live.Packets))
	if err != nil {
		t.Fatal(err)
	}
	got, err := det.Serve(context.Background(), NewSliceSource(live.Packets),
		WithOverloadPolicy(OverloadPolicy{Mode: OverloadBounded}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Packets != want.Packets || got.Flows != want.Flows || got.Alerts != want.Alerts {
		t.Fatalf("bounded-permissive %+v != lossless %+v", got, want)
	}
	for c := range want.ByClass {
		if got.ByClass[c] != want.ByClass[c] {
			t.Fatalf("ByClass[%d]: bounded %d != lossless %d", c, got.ByClass[c], want.ByClass[c])
		}
	}
	if want.DroppedTotal() != 0 || got.DroppedTotal() != 0 {
		t.Fatalf("drop counters nonzero: lossless %d, bounded-permissive %d",
			want.DroppedTotal(), got.DroppedTotal())
	}
}
