module cyberhd

go 1.24
