// Package cyberhd is a Go implementation of CyberHD — "Scalable and
// Efficient Hyperdimensional Computing for Network Intrusion Detection"
// (DAC 2023) — together with every substrate its evaluation depends on:
// hyperdimensional encoders and classifiers with dynamic dimension
// regeneration, quantized inference, fault injection, DNN/SVM baselines,
// a packet→flow→feature network substrate, synthetic reconstructions of
// the four evaluation datasets, and a streaming detection engine.
//
// This root package is the stable facade. The typical workflow:
//
//	ds := cyberhd.NSLKDD(20000, 42)
//	det, err := cyberhd.TrainDetector(ds, cyberhd.DefaultConfig())
//	class := det.Classify(features)
//
// Live traffic is one call more: det.Serve pumps any PacketSource through
// a detection engine and fans alerts to sinks (see serve.go and the
// serving-runtime section of ARCHITECTURE.md):
//
//	stats, err := det.Serve(ctx, source, cyberhd.WithBatchSize(64),
//	    cyberhd.WithSinks(cyberhd.NewJSONLSink(os.Stdout)))
//
// Lower-level control (custom encoders, quantization, fault injection,
// experiment reproduction) is exposed through type aliases into the
// implementation packages, so the full system is scriptable from here.
package cyberhd

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"cyberhd/internal/bitpack"
	"cyberhd/internal/core"
	"cyberhd/internal/datasets"
	"cyberhd/internal/encoder"
	"cyberhd/internal/netflow"
	"cyberhd/internal/pipeline"
	"cyberhd/internal/quantize"
	"cyberhd/internal/traffic"
)

// Re-exported core types. Aliases keep the implementation internal while
// giving users stable names rooted at this package.
type (
	// Dataset is a labeled feature table (see NSLKDD, UNSWNB15,
	// CICIDS2017, CICIDS2018, LoadCSV).
	Dataset = datasets.Dataset
	// Normalizer carries train-split feature statistics.
	Normalizer = datasets.Normalizer
	// Model is a trained HDC classifier.
	Model = core.Model
	// TrainOptions configures HDC training (core semantics: RegenCycles=0
	// is a static BaselineHD model).
	TrainOptions = core.Options
	// Encoder maps feature vectors into hyperspace.
	Encoder = encoder.Encoder
	// QuantizedModel is a reduced-precision model for edge deployment.
	QuantizedModel = quantize.Model
	// QuantizedLive pairs a COWModel with re-quantized packed snapshots:
	// online feedback retrains the float working copy and every published
	// version carries a freshly packed class memory. Engines build one
	// automatically when EngineConfig.Quantize is set and the model is a
	// COWModel.
	QuantizedLive = quantize.Live
	// Width is a quantization bitwidth (1, 2, 4, 8, 16 or 32).
	Width = bitpack.Width
	// Engine is the streaming NIDS pipeline; Alert its verdict type.
	Engine = pipeline.Engine
	// ShardedEngine is the multi-core streaming pipeline: flow-hash
	// partitioned per-core engines with merged stats (see NewShardedEngine).
	ShardedEngine = pipeline.Sharded
	// EngineConfig assembles an Engine.
	EngineConfig = pipeline.Config
	// EngineStats is the engine counter snapshot returned by Stats.
	EngineStats = pipeline.Stats
	// COWModel is the concurrency-safe copy-on-write model wrapper:
	// classification reads immutable atomic snapshots while online
	// feedback publishes new versions (see NewCOWModel).
	COWModel = core.COWModel
	// ModelSnapshot is one immutable published model version.
	ModelSnapshot = core.Snapshot
	// Alert is one non-benign detection.
	Alert = pipeline.Alert
	// Packet is a raw packet record for the streaming engine.
	Packet = netflow.Packet
	// Addr is a packet endpoint address: 16 bytes, IPv4 stored v4-mapped
	// (see AddrV4, ParseAddr).
	Addr = netflow.Addr
	// FlowKey identifies a bidirectional flow (the canonical 5-tuple).
	FlowKey = netflow.FlowKey
	// TrafficConfig parameterizes the synthetic traffic generator.
	TrafficConfig = traffic.Config
	// TrafficStream is a generated labeled capture.
	TrafficStream = traffic.Stream
)

// Quantization widths.
const (
	W1  = bitpack.W1
	W2  = bitpack.W2
	W4  = bitpack.W4
	W8  = bitpack.W8
	W16 = bitpack.W16
	W32 = bitpack.W32
)

// Dataset constructors (synthetic reconstructions; see the Datasets
// section of README.md for the substitution rationale).
var (
	// NSLKDD synthesizes the 41-feature, 5-class NSL-KDD reconstruction.
	NSLKDD = datasets.NSLKDD
	// UNSWNB15 synthesizes the 42-feature, 10-class UNSW-NB15
	// reconstruction.
	UNSWNB15 = datasets.UNSWNB15
	// CICIDS2017 derives the 78-feature, 8-class CIC-IDS-2017
	// reconstruction from simulated packet traffic.
	CICIDS2017 = datasets.CICIDS2017
	// CICIDS2018 derives the 7-class CSE-CIC-IDS-2018 reconstruction.
	CICIDS2018 = datasets.CICIDS2018
	// DatasetByName builds any of the four by canonical name.
	DatasetByName = datasets.ByName
	// LoadCSV and SaveCSV persist datasets.
	LoadCSV = datasets.LoadCSV
	// SaveCSV writes a dataset to a CSV file.
	SaveCSV = datasets.SaveCSV
	// GenerateTraffic synthesizes a labeled packet capture.
	GenerateTraffic = traffic.Generate
	// AddrV4 builds an Addr from a numeric IPv4 address (v4-mapped).
	AddrV4 = netflow.AddrV4
	// ParseAddr parses a textual IPv4 or IPv6 address into an Addr.
	ParseAddr = netflow.ParseAddr
	// MustParseAddr is ParseAddr, panicking on error (for literals).
	MustParseAddr = netflow.MustParseAddr
)

// NewRBFEncoder builds the paper's RBF random-feature encoder: inDim input
// features to dim hyperspace dimensions; gamma <= 0 selects the default
// bandwidth.
func NewRBFEncoder(inDim, dim int, gamma float64, seed uint64) Encoder {
	return encoder.NewRBF(inDim, dim, gamma, seed)
}

// Train fits an HDC model on a feature matrix with the given encoder. Most
// callers want TrainDetector instead; this is the low-level entry point.
var Train = core.Train

// Quantize lowers a trained model to the given bitwidth.
func Quantize(m *Model, w Width) (*QuantizedModel, error) {
	return quantize.FromCore(m, w)
}

// Config is the one-call training configuration for TrainDetector.
type Config struct {
	// Dim is the physical hyperspace dimensionality (paper: 512).
	Dim int
	// Epochs is adaptive passes per regeneration cycle.
	Epochs int
	// RegenCycles is the number of drop/regenerate rounds; zero cycles
	// trains a static BaselineHD model.
	RegenCycles int
	// RegenRate is R, the fraction of dimensions dropped per cycle.
	RegenRate float64
	// LearningRate is η for the adaptive update.
	LearningRate float64
	// Gamma is the RBF encoder bandwidth (<= 0: default).
	Gamma float64
	// TrainFraction of samples used for fitting (rest measures TestAccuracy).
	TrainFraction float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig returns the paper-calibrated configuration (D = 0.5k,
// R = 20%, 7 regeneration cycles).
func DefaultConfig() Config {
	return Config{
		Dim: 512, Epochs: 8, RegenCycles: 7, RegenRate: 0.2,
		LearningRate: 0.1, TrainFraction: 0.75, Seed: 1,
	}
}

// Detector bundles everything needed to classify live flows: the model,
// the normalizer fitted on its training split, and class names.
type Detector struct {
	// Model is the trained HDC classifier.
	Model *Model
	// Normalizer carries the feature statistics of the training split;
	// every query must be normalized with it before prediction.
	Normalizer *Normalizer
	// ClassNames label the model's class indices.
	ClassNames []string
	// TestAccuracy is the held-out accuracy measured during TrainDetector.
	TestAccuracy float64
}

// TrainDetector splits ds, fits a normalizer and a CyberHD model, and
// reports held-out accuracy.
func TrainDetector(ds *Dataset, cfg Config) (*Detector, error) {
	if cfg.Dim <= 0 {
		cfg.Dim = 512
	}
	if cfg.TrainFraction <= 0 || cfg.TrainFraction >= 1 {
		cfg.TrainFraction = 0.75
	}
	train, test, norm := ds.NormalizedSplit(cfg.TrainFraction, cfg.Seed)
	enc := encoder.NewRBF(train.NumFeatures(), cfg.Dim, cfg.Gamma, cfg.Seed+1)
	m, err := core.Train(enc, train.X, train.Y, core.Options{
		Classes: train.NumClasses(), Epochs: cfg.Epochs,
		RegenCycles: cfg.RegenCycles, RegenRate: cfg.RegenRate,
		LearningRate: cfg.LearningRate, Seed: cfg.Seed + 2,
	})
	if err != nil {
		return nil, err
	}
	return &Detector{
		Model:        m,
		Normalizer:   norm,
		ClassNames:   ds.ClassNames,
		TestAccuracy: m.Evaluate(test.X, test.Y),
	}, nil
}

// Classify normalizes a raw feature vector and returns the predicted class
// name.
func (d *Detector) Classify(features []float32) string {
	x := make([]float32, len(features))
	copy(x, features)
	d.Normalizer.ApplyVec(x)
	return d.ClassNames[d.Model.Predict(x)]
}

// NewEngine builds a streaming detection engine from an explicit
// configuration — the entry point for non-default setups such as
// micro-batch classification (EngineConfig.BatchSize) or packed
// reduced-precision serving (EngineConfig.Quantize, the paper's Table I
// bitwidths as a live inference mode).
func NewEngine(cfg EngineConfig) (*Engine, error) { return pipeline.New(cfg) }

// NewShardedEngine builds the multi-core streaming engine: packets are
// hash-partitioned by flow 5-tuple across cfg.Shards per-core engines
// (0 selects one per CPU), with lossless bounded ingress, serialized
// alert delivery, a deterministic Close/drain, and merged Stats that are
// bit-identical to a single Engine over the same capture. For live
// analyst feedback during classification, set cfg.Model to a COWModel
// (NewCOWModel) so updates publish atomically against concurrent reads;
// combined with cfg.Quantize, every feedback publication also re-packs
// the quantized class memory the shards score against.
func NewShardedEngine(cfg EngineConfig) (*ShardedEngine, error) {
	return pipeline.NewSharded(cfg)
}

// NewCOWModel wraps a trained model in copy-on-write snapshots, making
// concurrent classification and online feedback race-free: readers load
// an immutable (encoder, class-matrix) snapshot through one atomic
// pointer read; Update builds the next version and swaps it in. The
// wrapped model becomes the wrapper's private working copy — stop using
// it directly.
func NewCOWModel(m *Model) *COWModel { return core.NewCOWModel(m) }

// NewEngine builds a streaming detection engine around the detector.
// benignClass is the class index that does not alert (0 in all four
// datasets); onAlert may be nil. Most callers want Serve (one call,
// source to sinks) or d.EngineConfig with options instead; this remains
// the minimal hand-driven form.
func (d *Detector) NewEngine(benignClass int, onAlert func(Alert)) (*Engine, error) {
	return NewEngine(EngineConfig{
		Model:       d.Model,
		Normalizer:  d.Normalizer,
		ClassNames:  d.ClassNames,
		BenignClass: benignClass,
		OnAlert:     onAlert,
	})
}

// EffectiveDim reports the detector's effective dimensionality D* (physical
// dims plus regenerated dims — the paper's headline metric).
func (d *Detector) EffectiveDim() int { return d.Model.EffectiveDim }

// String summarizes the detector.
func (d *Detector) String() string {
	return fmt.Sprintf("cyberhd.Detector{classes=%d, D=%d, D*=%d, testAcc=%.2f%%}",
		len(d.ClassNames), d.Model.Dim(), d.Model.EffectiveDim, 100*d.TestAccuracy)
}

// detectorState is the gob wire format of a Detector (the model travels
// through core's own serializer).
type detectorState struct {
	Version      int
	ClassNames   []string
	Mean, InvStd []float32
	TestAccuracy float64
	Model        []byte
}

// Save serializes the detector — model, normalizer, class names — so a
// deployment can reload it with LoadDetector and classify identically.
func (d *Detector) Save(w io.Writer) error {
	var model bytes.Buffer
	if err := d.Model.Save(&model); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(&detectorState{
		Version:    1,
		ClassNames: d.ClassNames,
		Mean:       d.Normalizer.Mean, InvStd: d.Normalizer.InvStd,
		TestAccuracy: d.TestAccuracy,
		Model:        model.Bytes(),
	})
}

// SaveFile writes the detector to path.
func (d *Detector) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadDetector reads a detector written by Detector.Save.
func LoadDetector(r io.Reader) (*Detector, error) {
	var state detectorState
	if err := gob.NewDecoder(r).Decode(&state); err != nil {
		return nil, fmt.Errorf("cyberhd: decoding detector: %w", err)
	}
	if state.Version != 1 {
		return nil, fmt.Errorf("cyberhd: unsupported detector version %d", state.Version)
	}
	m, err := core.Load(bytes.NewReader(state.Model))
	if err != nil {
		return nil, err
	}
	return &Detector{
		Model:        m,
		Normalizer:   &datasets.Normalizer{Mean: state.Mean, InvStd: state.InvStd},
		ClassNames:   state.ClassNames,
		TestAccuracy: state.TestAccuracy,
	}, nil
}

// LoadDetectorFile reads a detector from path.
func LoadDetectorFile(path string) (*Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDetector(f)
}
