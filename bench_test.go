// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark measures the wall-clock cost of the
// experiment's unit of work and reports the experiment's headline numbers
// as custom metrics, so `go test -bench=. -benchmem` reproduces the whole
// evaluation in one run:
//
//	BenchmarkFig3*   — accuracy comparison (acc_pct metric per model/dataset)
//	BenchmarkFig4*   — training time and per-query inference latency
//	BenchmarkTable1* — quantized inference per bitwidth + modeled CPU/FPGA
//	                   energy efficiencies
//	BenchmarkFig5*   — fault-injection robustness (loss_pp metric)
//	BenchmarkAblation* — design-choice ablations (DESIGN.md §5)
//
// Scale is reduced relative to cmd/experiments (benchmarks run the whole
// grid repeatedly); the experiment harness behind both is identical.
package cyberhd

import (
	"fmt"
	"sync"
	"testing"

	"cyberhd/internal/baseline/mlp"
	"cyberhd/internal/baseline/svm"
	"cyberhd/internal/bitpack"
	"cyberhd/internal/core"
	"cyberhd/internal/datasets"
	"cyberhd/internal/experiments"
	"cyberhd/internal/faults"
	"cyberhd/internal/hwmodel"
	"cyberhd/internal/quantize"
	"cyberhd/internal/rng"
)

// benchSamples keeps per-iteration cost manageable across the full grid.
const benchSamples = 2500

var (
	benchMu     sync.Mutex
	benchSplits = map[string][2]*datasets.Dataset{}
)

// benchSplit caches normalized splits across benchmarks.
func benchSplit(b *testing.B, name string) (train, test *datasets.Dataset) {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if s, ok := benchSplits[name]; ok {
		return s[0], s[1]
	}
	tr, te, err := experiments.LoadSplit(name, experiments.Config{Samples: benchSamples, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	benchSplits[name] = [2]*datasets.Dataset{tr, te}
	return tr, te
}

// ---------------------------------------------------------------- Fig 3

// BenchmarkFig3 trains each model per iteration and reports held-out
// accuracy — the bar heights of Fig 3.
func BenchmarkFig3(b *testing.B) {
	for _, ds := range datasets.PaperDatasets() {
		for _, model := range experiments.ModelNames {
			b.Run(model+"/"+ds, func(b *testing.B) {
				train, test := benchSplit(b, ds)
				var acc float64
				for i := 0; i < b.N; i++ {
					acc = benchTrainEval(b, model, train, test)
				}
				b.ReportMetric(100*acc, "acc_pct")
			})
		}
	}
}

func benchTrainEval(b *testing.B, model string, train, test *datasets.Dataset) float64 {
	b.Helper()
	switch model {
	case "DNN":
		m, err := mlp.Train(train.X, train.Y, train.NumClasses(), mlp.Options{Epochs: experiments.DNNEpochs, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		return m.Evaluate(test.X, test.Y)
	case "SVM":
		m, err := svm.TrainLinear(train.X, train.Y, train.NumClasses(), svm.LinearOptions{Epochs: experiments.SVMEpochs, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		return m.Evaluate(test.X, test.Y)
	case "BaselineHD-0.5k":
		m, err := experiments.TrainBaselineHD(train, experiments.PhysDim, 4)
		if err != nil {
			b.Fatal(err)
		}
		return m.Evaluate(test.X, test.Y)
	case "BaselineHD-4k":
		m, err := experiments.TrainBaselineHD(train, experiments.EffDim, 4)
		if err != nil {
			b.Fatal(err)
		}
		return m.Evaluate(test.X, test.Y)
	case "CyberHD":
		m, err := experiments.TrainCyberHD(train, 4)
		if err != nil {
			b.Fatal(err)
		}
		return m.Evaluate(test.X, test.Y)
	}
	b.Fatalf("unknown model %q", model)
	return 0
}

// ---------------------------------------------------------------- Fig 4

// BenchmarkFig4Train measures wall-clock training per model (Fig 4 left).
// The benchmark time per op IS the figure's bar.
func BenchmarkFig4Train(b *testing.B) {
	for _, ds := range datasets.PaperDatasets() {
		for _, model := range experiments.ModelNames {
			b.Run(model+"/"+ds, func(b *testing.B) {
				train, test := benchSplit(b, ds)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchTrainOnly(b, model, train)
				}
				_ = test
			})
		}
	}
}

func benchTrainOnly(b *testing.B, model string, train *datasets.Dataset) {
	b.Helper()
	switch model {
	case "DNN":
		if _, err := mlp.Train(train.X, train.Y, train.NumClasses(), mlp.Options{Epochs: experiments.DNNEpochs, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	case "SVM":
		if _, err := svm.TrainLinear(train.X, train.Y, train.NumClasses(), svm.LinearOptions{Epochs: experiments.SVMEpochs, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	case "BaselineHD-0.5k":
		if _, err := experiments.TrainBaselineHD(train, experiments.PhysDim, 4); err != nil {
			b.Fatal(err)
		}
	case "BaselineHD-4k":
		if _, err := experiments.TrainBaselineHD(train, experiments.EffDim, 4); err != nil {
			b.Fatal(err)
		}
	case "CyberHD":
		if _, err := experiments.TrainCyberHD(train, 4); err != nil {
			b.Fatal(err)
		}
	default:
		b.Fatalf("unknown model %q", model)
	}
}

// BenchmarkFig4Inference measures per-query latency (Fig 4 right) on
// NSL-KDD; ns/op is the figure's bar.
func BenchmarkFig4Inference(b *testing.B) {
	train, test := benchSplit(b, "nsl-kdd")
	q := test.X.Row(0)

	dnn, err := mlp.Train(train.X, train.Y, train.NumClasses(), mlp.Options{Epochs: 3, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("DNN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = dnn.Predict(q)
		}
	})

	lsvm, err := svm.TrainLinear(train.X, train.Y, train.NumClasses(), svm.LinearOptions{Epochs: 2, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("SVM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = lsvm.Predict(q)
		}
	})

	hd4k, err := experiments.TrainBaselineHD(train, experiments.EffDim, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("BaselineHD-4k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = hd4k.Predict(q)
		}
	})

	cyber, err := experiments.TrainCyberHD(train, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("CyberHD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = cyber.Predict(q)
		}
	})
}

// -------------------------------------------------------------- Table I

// BenchmarkTable1 measures quantized class-memory scoring at each bitwidth
// and the paper's effective dimensionality, and reports the calibrated
// platform-model efficiencies as metrics — the three rows of Table I.
func BenchmarkTable1(b *testing.B) {
	rows, err := hwmodel.Table(hwmodel.DefaultCPU(), hwmodel.DefaultFPGA(), hwmodel.PaperEffectiveDims)
	if err != nil {
		b.Fatal(err)
	}
	const classes = 5
	for _, row := range rows {
		b.Run(fmt.Sprintf("%dbit", row.Width), func(b *testing.B) {
			r := rng.New(uint64(row.Width))
			flat := make([]float32, classes*row.EffectiveDim)
			r.FillNorm(flat, 0, 1)
			mem := bitpack.QuantizeMatrix(flat, classes, row.EffectiveDim, row.Width)
			qv := make([]float32, row.EffectiveDim)
			r.FillNorm(qv, 0, 1)
			query := bitpack.Quantize(qv, row.Width)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = mem.Classify(query)
			}
			b.ReportMetric(float64(row.EffectiveDim), "eff_dim")
			b.ReportMetric(row.CPUEff, "cpu_eff_x")
			b.ReportMetric(row.FPGAEff, "fpga_eff_x")
		})
	}
}

// ---------------------------------------------------------------- Fig 5

// BenchmarkFig5 measures one fault-injection round (clone, corrupt,
// re-evaluate) per model configuration and reports the accuracy loss in
// percentage points — the cells of Fig 5 at the 10% error rate.
func BenchmarkFig5(b *testing.B) {
	const rate = 0.10
	train, test := benchSplit(b, "nsl-kdd")

	dnn, err := mlp.Train(train.X, train.Y, train.NumClasses(), mlp.Options{Epochs: experiments.DNNEpochs, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	dnnClean := dnn.Evaluate(test.X, test.Y)
	b.Run("DNN", func(b *testing.B) {
		r := rng.New(9)
		var loss float64
		for i := 0; i < b.N; i++ {
			hurt := dnn.Clone()
			for _, ws := range hurt.Weights() {
				faults.InjectFloat32Bits(ws, rate, 1, r)
			}
			loss = dnnClean - hurt.Evaluate(test.X, test.Y)
		}
		b.ReportMetric(100*loss, "loss_pp")
	})

	for _, w := range experiments.Fig5Widths {
		b.Run(fmt.Sprintf("CyberHD-%dbit", w), func(b *testing.B) {
			m, err := experiments.TrainBaselineHD(train, experiments.Fig5Dim(w), 4)
			if err != nil {
				b.Fatal(err)
			}
			q, err := quantize.FromCore(m, w)
			if err != nil {
				b.Fatal(err)
			}
			clean := q.Evaluate(test.X, test.Y)
			r := rng.New(uint64(w) + 9)
			b.ResetTimer()
			var loss float64
			for i := 0; i < b.N; i++ {
				hurt := q.Clone()
				faults.InjectQuantizedBits(hurt.Class, rate, r)
				loss = clean - hurt.Evaluate(test.X, test.Y)
			}
			b.ReportMetric(100*loss, "loss_pp")
		})
	}
}

// ------------------------------------------------------------ Ablations

// BenchmarkAblationDropStrategy compares variance-guided against random
// dimension selection per iteration (DESIGN.md §5 ablation index).
func BenchmarkAblationDropStrategy(b *testing.B) {
	train, test := benchSplit(b, "nsl-kdd")
	strategies := map[string]func(m *core.Model, drop int) []int{
		"variance": nil,
	}
	dropRng := rng.New(7)
	strategies["random"] = func(m *core.Model, drop int) []int {
		return dropRng.Perm(m.Dim())[:drop]
	}
	for name, sel := range strategies {
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				enc := NewRBFEncoder(train.NumFeatures(), experiments.PhysDim, 0, 4)
				m, err := core.Train(enc, train.X, train.Y, core.Options{
					Classes: train.NumClasses(), Epochs: experiments.CyberEpochs,
					RegenCycles: experiments.RegenCycles, RegenRate: experiments.RegenRate,
					LearningRate: experiments.HDLearningRate, Seed: 5, DropSelector: sel,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = m.Evaluate(test.X, test.Y)
			}
			b.ReportMetric(100*acc, "acc_pct")
		})
	}
}

// BenchmarkAblationRegenRate sweeps the regeneration rate R.
func BenchmarkAblationRegenRate(b *testing.B) {
	train, test := benchSplit(b, "nsl-kdd")
	for _, rate := range []float64{0.1, 0.2, 0.4} {
		b.Run(fmt.Sprintf("R=%.0f%%", 100*rate), func(b *testing.B) {
			var acc float64
			var effDim int
			for i := 0; i < b.N; i++ {
				enc := NewRBFEncoder(train.NumFeatures(), experiments.PhysDim, 0, 4)
				m, err := core.Train(enc, train.X, train.Y, core.Options{
					Classes: train.NumClasses(), Epochs: experiments.CyberEpochs,
					RegenCycles: experiments.RegenCycles, RegenRate: rate,
					LearningRate: experiments.HDLearningRate, Seed: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = m.Evaluate(test.X, test.Y)
				effDim = m.EffectiveDim
			}
			b.ReportMetric(100*acc, "acc_pct")
			b.ReportMetric(float64(effDim), "eff_dim")
		})
	}
}
