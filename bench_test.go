// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark measures the wall-clock cost of the
// experiment's unit of work and reports the experiment's headline numbers
// as custom metrics, so `go test -bench=. -benchmem` reproduces the whole
// evaluation in one run:
//
//	BenchmarkFig3*   — accuracy comparison (acc_pct metric per model/dataset)
//	BenchmarkFig4*   — training time and per-query inference latency
//	BenchmarkTable1* — quantized inference per bitwidth + modeled CPU/FPGA
//	                   energy efficiencies
//	BenchmarkFig5*   — fault-injection robustness (loss_pp metric)
//	BenchmarkAblation* — design-choice ablations
//
// Scale is reduced relative to cmd/experiments (benchmarks run the whole
// grid repeatedly); the experiment harness behind both is identical.
package cyberhd

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"

	"cyberhd/internal/baseline/mlp"
	"cyberhd/internal/baseline/svm"
	"cyberhd/internal/bitpack"
	"cyberhd/internal/core"
	"cyberhd/internal/datasets"
	"cyberhd/internal/encoder"
	"cyberhd/internal/experiments"
	"cyberhd/internal/faults"
	"cyberhd/internal/hdc"
	"cyberhd/internal/hwmodel"
	"cyberhd/internal/netflow"
	"cyberhd/internal/pipeline"
	"cyberhd/internal/quantize"
	"cyberhd/internal/rng"
	"cyberhd/internal/telemetry"
	"cyberhd/internal/traffic"
)

// benchSamples keeps per-iteration cost manageable across the full grid.
const benchSamples = 2500

var (
	benchMu     sync.Mutex
	benchSplits = map[string][2]*datasets.Dataset{}
)

// benchSplit caches normalized splits across benchmarks.
func benchSplit(b *testing.B, name string) (train, test *datasets.Dataset) {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if s, ok := benchSplits[name]; ok {
		return s[0], s[1]
	}
	tr, te, err := experiments.LoadSplit(name, experiments.Config{Samples: benchSamples, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	benchSplits[name] = [2]*datasets.Dataset{tr, te}
	return tr, te
}

// ---------------------------------------------------------------- Fig 3

// BenchmarkFig3 trains each model per iteration and reports held-out
// accuracy — the bar heights of Fig 3.
func BenchmarkFig3(b *testing.B) {
	for _, ds := range datasets.PaperDatasets() {
		for _, model := range experiments.ModelNames {
			b.Run(model+"/"+ds, func(b *testing.B) {
				train, test := benchSplit(b, ds)
				var acc float64
				for i := 0; i < b.N; i++ {
					acc = benchTrainEval(b, model, train, test)
				}
				b.ReportMetric(100*acc, "acc_pct")
			})
		}
	}
}

func benchTrainEval(b *testing.B, model string, train, test *datasets.Dataset) float64 {
	b.Helper()
	switch model {
	case "DNN":
		m, err := mlp.Train(train.X, train.Y, train.NumClasses(), mlp.Options{Epochs: experiments.DNNEpochs, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		return m.Evaluate(test.X, test.Y)
	case "SVM":
		m, err := svm.TrainLinear(train.X, train.Y, train.NumClasses(), svm.LinearOptions{Epochs: experiments.SVMEpochs, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		return m.Evaluate(test.X, test.Y)
	case "BaselineHD-0.5k":
		m, err := experiments.TrainBaselineHD(train, experiments.PhysDim, 4)
		if err != nil {
			b.Fatal(err)
		}
		return m.Evaluate(test.X, test.Y)
	case "BaselineHD-4k":
		m, err := experiments.TrainBaselineHD(train, experiments.EffDim, 4)
		if err != nil {
			b.Fatal(err)
		}
		return m.Evaluate(test.X, test.Y)
	case "CyberHD":
		m, err := experiments.TrainCyberHD(train, 4)
		if err != nil {
			b.Fatal(err)
		}
		return m.Evaluate(test.X, test.Y)
	}
	b.Fatalf("unknown model %q", model)
	return 0
}

// ---------------------------------------------------------------- Fig 4

// BenchmarkFig4Train measures wall-clock training per model (Fig 4 left).
// The benchmark time per op IS the figure's bar.
func BenchmarkFig4Train(b *testing.B) {
	for _, ds := range datasets.PaperDatasets() {
		for _, model := range experiments.ModelNames {
			b.Run(model+"/"+ds, func(b *testing.B) {
				train, test := benchSplit(b, ds)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchTrainOnly(b, model, train)
				}
				_ = test
			})
		}
	}
}

func benchTrainOnly(b *testing.B, model string, train *datasets.Dataset) {
	b.Helper()
	switch model {
	case "DNN":
		if _, err := mlp.Train(train.X, train.Y, train.NumClasses(), mlp.Options{Epochs: experiments.DNNEpochs, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	case "SVM":
		if _, err := svm.TrainLinear(train.X, train.Y, train.NumClasses(), svm.LinearOptions{Epochs: experiments.SVMEpochs, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	case "BaselineHD-0.5k":
		if _, err := experiments.TrainBaselineHD(train, experiments.PhysDim, 4); err != nil {
			b.Fatal(err)
		}
	case "BaselineHD-4k":
		if _, err := experiments.TrainBaselineHD(train, experiments.EffDim, 4); err != nil {
			b.Fatal(err)
		}
	case "CyberHD":
		if _, err := experiments.TrainCyberHD(train, 4); err != nil {
			b.Fatal(err)
		}
	default:
		b.Fatalf("unknown model %q", model)
	}
}

// BenchmarkFig4Inference measures per-query latency (Fig 4 right) on
// NSL-KDD; ns/op is the figure's bar.
func BenchmarkFig4Inference(b *testing.B) {
	train, test := benchSplit(b, "nsl-kdd")
	q := test.X.Row(0)

	dnn, err := mlp.Train(train.X, train.Y, train.NumClasses(), mlp.Options{Epochs: 3, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("DNN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = dnn.Predict(q)
		}
	})

	lsvm, err := svm.TrainLinear(train.X, train.Y, train.NumClasses(), svm.LinearOptions{Epochs: 2, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("SVM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = lsvm.Predict(q)
		}
	})

	hd4k, err := experiments.TrainBaselineHD(train, experiments.EffDim, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("BaselineHD-4k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = hd4k.Predict(q)
		}
	})

	cyber, err := experiments.TrainCyberHD(train, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("CyberHD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = cyber.Predict(q)
		}
	})
}

// -------------------------------------------------------------- Table I

// BenchmarkTable1 measures quantized class-memory scoring at each bitwidth
// and the paper's effective dimensionality, and reports the calibrated
// platform-model efficiencies as metrics — the three rows of Table I.
func BenchmarkTable1(b *testing.B) {
	rows, err := hwmodel.Table(hwmodel.DefaultCPU(), hwmodel.DefaultFPGA(), hwmodel.PaperEffectiveDims)
	if err != nil {
		b.Fatal(err)
	}
	const classes = 5
	for _, row := range rows {
		b.Run(fmt.Sprintf("%dbit", row.Width), func(b *testing.B) {
			r := rng.New(uint64(row.Width))
			flat := make([]float32, classes*row.EffectiveDim)
			r.FillNorm(flat, 0, 1)
			mem := bitpack.QuantizeMatrix(flat, classes, row.EffectiveDim, row.Width)
			qv := make([]float32, row.EffectiveDim)
			r.FillNorm(qv, 0, 1)
			query := bitpack.Quantize(qv, row.Width)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = mem.Classify(query)
			}
			b.ReportMetric(float64(row.EffectiveDim), "eff_dim")
			b.ReportMetric(row.CPUEff, "cpu_eff_x")
			b.ReportMetric(row.FPGAEff, "fpga_eff_x")
		})
	}
}

// ---------------------------------------------------------------- Fig 5

// BenchmarkFig5 measures one fault-injection round (clone, corrupt,
// re-evaluate) per model configuration and reports the accuracy loss in
// percentage points — the cells of Fig 5 at the 10% error rate.
func BenchmarkFig5(b *testing.B) {
	const rate = 0.10
	train, test := benchSplit(b, "nsl-kdd")

	dnn, err := mlp.Train(train.X, train.Y, train.NumClasses(), mlp.Options{Epochs: experiments.DNNEpochs, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	dnnClean := dnn.Evaluate(test.X, test.Y)
	b.Run("DNN", func(b *testing.B) {
		r := rng.New(9)
		var loss float64
		for i := 0; i < b.N; i++ {
			hurt := dnn.Clone()
			for _, ws := range hurt.Weights() {
				faults.InjectFloat32Bits(ws, rate, 1, r)
			}
			loss = dnnClean - hurt.Evaluate(test.X, test.Y)
		}
		b.ReportMetric(100*loss, "loss_pp")
	})

	for _, w := range experiments.Fig5Widths {
		b.Run(fmt.Sprintf("CyberHD-%dbit", w), func(b *testing.B) {
			m, err := experiments.TrainBaselineHD(train, experiments.Fig5Dim(w), 4)
			if err != nil {
				b.Fatal(err)
			}
			q, err := quantize.FromCore(m, w)
			if err != nil {
				b.Fatal(err)
			}
			clean := q.Evaluate(test.X, test.Y)
			r := rng.New(uint64(w) + 9)
			b.ResetTimer()
			var loss float64
			for i := 0; i < b.N; i++ {
				hurt := q.Clone()
				faults.InjectQuantizedBits(hurt.Class, rate, r)
				loss = clean - hurt.Evaluate(test.X, test.Y)
			}
			b.ReportMetric(100*loss, "loss_pp")
		})
	}
}

// ------------------------------------------------------------ Ablations

// BenchmarkAblationDropStrategy compares variance-guided against random
// dimension selection per iteration (ablation index).
func BenchmarkAblationDropStrategy(b *testing.B) {
	train, test := benchSplit(b, "nsl-kdd")
	strategies := map[string]func(m *core.Model, drop int) []int{
		"variance": nil,
	}
	dropRng := rng.New(7)
	strategies["random"] = func(m *core.Model, drop int) []int {
		return dropRng.Perm(m.Dim())[:drop]
	}
	for name, sel := range strategies {
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				enc := NewRBFEncoder(train.NumFeatures(), experiments.PhysDim, 0, 4)
				m, err := core.Train(enc, train.X, train.Y, core.Options{
					Classes: train.NumClasses(), Epochs: experiments.CyberEpochs,
					RegenCycles: experiments.RegenCycles, RegenRate: experiments.RegenRate,
					LearningRate: experiments.HDLearningRate, Seed: 5, DropSelector: sel,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = m.Evaluate(test.X, test.Y)
			}
			b.ReportMetric(100*acc, "acc_pct")
		})
	}
}

// BenchmarkAblationRegenRate sweeps the regeneration rate R.
func BenchmarkAblationRegenRate(b *testing.B) {
	train, test := benchSplit(b, "nsl-kdd")
	for _, rate := range []float64{0.1, 0.2, 0.4} {
		b.Run(fmt.Sprintf("R=%.0f%%", 100*rate), func(b *testing.B) {
			var acc float64
			var effDim int
			for i := 0; i < b.N; i++ {
				enc := NewRBFEncoder(train.NumFeatures(), experiments.PhysDim, 0, 4)
				m, err := core.Train(enc, train.X, train.Y, core.Options{
					Classes: train.NumClasses(), Epochs: experiments.CyberEpochs,
					RegenCycles: experiments.RegenCycles, RegenRate: rate,
					LearningRate: experiments.HDLearningRate, Seed: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = m.Evaluate(test.X, test.Y)
				effDim = m.EffectiveDim
			}
			b.ReportMetric(100*acc, "acc_pct")
			b.ReportMetric(float64(effDim), "eff_dim")
		})
	}
}

// ------------------------------------------------ Kernel layer (PR 1)
//
// The benchmarks below compare the blocked kernel layer against the
// seed's row-at-a-time kernels, kept here as explicit naive references:
// RBF encoding was one float64 hdc.Dot plus math.Cos per output dimension
// and prediction recomputed every class norm per call (hdc.ArgmaxCosine).
// TestWriteBenchJSON snapshots the measured speedups into BENCH_1.json.

// naiveRBFEncode is the seed's RBF.Encode.
func naiveRBFEncode(base *hdc.Matrix, bias []float32, x, dst []float32) {
	for d := 0; d < base.Rows; d++ {
		dst[d] = float32(math.Cos(hdc.Dot(base.Row(d), x) + float64(bias[d])))
	}
}

// benchEncShape builds matching shapes for the naive and blocked paths:
// a 512-dim RBF over the 78 CIC flow features.
func benchEncShape(samples int) (base *hdc.Matrix, bias []float32, x *hdc.Matrix, enc encoder.BatchEncoder) {
	const inDim, dim = netflow.NumFeatures, 512
	r := rng.New(11)
	base = hdc.NewMatrix(dim, inDim)
	r.FillNorm(base.Data, 0, 1/math.Sqrt(inDim))
	bias = make([]float32, dim)
	r.FillUniform(bias, 0, 2*math.Pi)
	x = hdc.NewMatrix(samples, inDim)
	r.FillNorm(x.Data, 0, 1)
	enc = encoder.NewRBF(inDim, dim, 0, 12)
	return
}

func benchEncodeBatchNaive(b *testing.B) {
	base, bias, x, _ := benchEncShape(256)
	out := hdc.NewMatrix(x.Rows, base.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < x.Rows; s++ {
			naiveRBFEncode(base, bias, x.Row(s), out.Row(s))
		}
	}
}

func benchEncodeBatchBlocked(b *testing.B) {
	_, _, x, enc := benchEncShape(256)
	out := hdc.NewMatrix(x.Rows, enc.Dim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encoder.EncodeBatchInto(enc, x, out)
	}
}

// BenchmarkEncodeBatch measures batch RBF encoding (256 flows × 78
// features → 512 dims): the seed's per-row matvec loop against the
// blocked panel GEMM with fused cosine.
func BenchmarkEncodeBatch(b *testing.B) {
	b.Run("naive", benchEncodeBatchNaive)
	b.Run("blocked", benchEncodeBatchBlocked)
}

// benchPredictModel trains one 512-dim model for the prediction paths.
func benchPredictModel(b *testing.B) (*core.Model, []float32) {
	b.Helper()
	train, test := benchSplit(b, "nsl-kdd")
	m, err := experiments.TrainBaselineHD(train, experiments.PhysDim, 4)
	if err != nil {
		b.Fatal(err)
	}
	return m, test.X.Row(0)
}

func benchPredictNaive(b *testing.B) {
	base, bias, x, _ := benchEncShape(1)
	r := rng.New(13)
	class := hdc.NewMatrix(5, base.Rows)
	r.FillNorm(class.Data, 0, 1)
	q := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := make([]float32, base.Rows)
		naiveRBFEncode(base, bias, q, h)
		pred, _ := hdc.ArgmaxCosine(class, h)
		benchSink = pred
	}
}

func benchPredictPooled(b *testing.B) {
	base, _, x, enc := benchEncShape(1)
	r := rng.New(13)
	classData := hdc.NewMatrix(5, base.Rows)
	r.FillNorm(classData.Data, 0, 1)
	m := &core.Model{Enc: enc, Class: classData}
	q := x.Row(0)
	m.Predict(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = m.Predict(q)
	}
}

var benchSink int

// BenchmarkPredict measures repeated single-sample prediction on
// identical shapes (78 features, 512 dims, 5 classes): the seed path
// (fresh encode buffer, float64 row-at-a-time encode, per-call class
// norms) against the pooled kernel path.
func BenchmarkPredict(b *testing.B) {
	b.Run("naive", benchPredictNaive)
	b.Run("pooled", benchPredictPooled)
}

func benchPredictEncodedNaive(b *testing.B) {
	m, q := benchPredictModel(b)
	h := make([]float32, m.Dim())
	m.Enc.Encode(q, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred, _ := hdc.ArgmaxCosine(m.Class, h)
		benchSink = pred
	}
}

func benchPredictEncodedCached(b *testing.B) {
	m, q := benchPredictModel(b)
	h := make([]float32, m.Dim())
	m.Enc.Encode(q, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = m.PredictEncoded(h)
	}
}

// BenchmarkPredictEncoded isolates scoring: per-call norm recomputation
// (hdc.ArgmaxCosine) against the Scorer's cached norms + kernel dots.
func BenchmarkPredictEncoded(b *testing.B) {
	b.Run("naive", benchPredictEncodedNaive)
	b.Run("cached", benchPredictEncodedCached)
}

// benchStream caches the BENCH_1 engine shape (512-dim model over
// CICIDS2017 flows, 400-session live capture) so the sharded sweep does
// not retrain the model per measurement. The model is only ever read by
// the engine benchmarks, so sharing it across engines is safe.
var benchStream struct {
	once sync.Once
	cfg  pipeline.Config
	live *traffic.Stream
	err  error
}

// benchStreamShape returns the shared engine config (zero BatchSize; copy
// and adjust) and capture.
func benchStreamShape(b *testing.B) (pipeline.Config, *traffic.Stream) {
	b.Helper()
	if err := ensureBenchStream(); err != nil {
		b.Fatal(err)
	}
	return benchStream.cfg, benchStream.live
}

func ensureBenchStream() error {
	benchStream.once.Do(func() {
		train := datasets.CICIDS2017(1500, 21)
		trainSet, _, norm := train.NormalizedSplit(0.9, 3)
		m, err := core.Train(
			NewRBFEncoder(trainSet.NumFeatures(), 512, 0, 5),
			trainSet.X, trainSet.Y,
			core.Options{Classes: trainSet.NumClasses(), Epochs: 4, Seed: 7},
		)
		if err != nil {
			benchStream.err = err
			return
		}
		benchStream.cfg = pipeline.Config{Model: m, Normalizer: norm, ClassNames: train.ClassNames}
		benchStream.live = traffic.Generate(traffic.Config{Sessions: 400, Seed: 99})
	})
	return benchStream.err
}

// benchEngine streams a fixed capture through an engine per iteration and
// reports flows/sec.
func benchEngine(b *testing.B, batch int) {
	cfg, live := benchStreamShape(b)
	cfg.BatchSize = batch
	flows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := pipeline.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for p := range live.Packets {
			eng.Feed(live.Packets[p])
		}
		eng.Flush()
		flows = eng.Stats().Flows
	}
	b.ReportMetric(float64(flows)*float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}

// BenchmarkEngineClassify measures end-to-end streaming throughput
// (packets → flows → featurize → classify) with per-flow prediction vs
// 64-flow micro-batches.
func BenchmarkEngineClassify(b *testing.B) {
	b.Run("sync", func(b *testing.B) { benchEngine(b, 0) })
	b.Run("batch64", func(b *testing.B) { benchEngine(b, 64) })
}

// ------------------------------------------------ Sharded engine (PR 2)

// benchConcurrentEngine streams the capture through the single-worker
// Concurrent wrapper — the pre-sharding scaling ceiling.
func benchConcurrentEngine(b *testing.B, batch int) {
	cfg, live := benchStreamShape(b)
	cfg.BatchSize = batch
	flows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := pipeline.NewConcurrent(cfg, 1024)
		if err != nil {
			b.Fatal(err)
		}
		for p := range live.Packets {
			c.Feed(live.Packets[p])
		}
		c.Close()
		flows = c.Stats().Flows
	}
	b.ReportMetric(float64(flows)*float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}

// benchShardedEngine streams the capture through the flow-sharded
// multi-core engine with the given shard count.
func benchShardedEngine(b *testing.B, shards, batch int) {
	cfg, live := benchStreamShape(b)
	cfg.BatchSize = batch
	cfg.Shards = shards
	flows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh, err := pipeline.NewSharded(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for p := range live.Packets {
			sh.Feed(live.Packets[p])
		}
		sh.Close()
		flows = sh.Stats().Flows
	}
	b.ReportMetric(float64(flows)*float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}

// BenchmarkShardedClassify measures streaming throughput of the
// flow-sharded engine at 1/2/4/8 shards against the single-worker
// Concurrent baseline, all with 64-flow micro-batches (the BENCH_1 fast
// configuration). Scaling tracks available cores: on a 1-CPU host every
// variant is ingress-bound and roughly flat.
func BenchmarkShardedClassify(b *testing.B) {
	b.Run("concurrent", func(b *testing.B) { benchConcurrentEngine(b, 64) })
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", n), func(b *testing.B) { benchShardedEngine(b, n, 64) })
	}
}

// -------------------------------------------- Quantized serving (PR 3)

// benchQuantWidths is the Table I bitwidth sweep served live.
var benchQuantWidths = []bitpack.Width{bitpack.W1, bitpack.W2, bitpack.W4, bitpack.W8, bitpack.W16, bitpack.W32}

// benchQuantEngine streams the shared capture through an engine lowered to
// packed w-bit inference.
func benchQuantEngine(b *testing.B, w bitpack.Width, batch int) {
	cfg, live := benchStreamShape(b)
	cfg.BatchSize = batch
	cfg.Quantize = w
	flows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := pipeline.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for p := range live.Packets {
			eng.Feed(live.Packets[p])
		}
		eng.Flush()
		flows = eng.Stats().Flows
	}
	b.ReportMetric(float64(flows)*float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}

// BenchmarkQuantizedClassify measures end-to-end streaming throughput of
// packed integer inference at every supported bitwidth against the
// float32 engine, all with 64-flow micro-batches on identical traffic —
// the serving form of the paper's Table I sweep.
func BenchmarkQuantizedClassify(b *testing.B) {
	b.Run("float32", func(b *testing.B) { benchEngine(b, 64) })
	for _, w := range benchQuantWidths {
		w := w
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) { benchQuantEngine(b, w, 64) })
	}
}

// ------------------------------------------- Serving runtime (PR 4)

// benchRunnerReplay streams the shared capture through the serving
// runtime — Runner over a slice source with 1 s auto-ticks — and reports
// flows/s. Comparable against benchEngine, which hand-drives the same
// engine without ticks: the delta is the runtime's pump overhead.
func benchRunnerReplay(b *testing.B, batch int) {
	cfg, live := benchStreamShape(b)
	cfg.BatchSize = batch
	flows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := pipeline.NewRunner(cfg, netflow.NewSliceSource(live.Packets))
		if err != nil {
			b.Fatal(err)
		}
		st, err := r.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		flows = st.Flows
	}
	b.ReportMetric(float64(flows)*float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}

// BenchmarkRunnerReplay measures end-to-end serving-runtime throughput
// (source → runner → engine → stats) per-flow and micro-batched.
func BenchmarkRunnerReplay(b *testing.B) {
	b.Run("sync", func(b *testing.B) { benchRunnerReplay(b, 0) })
	b.Run("batch64", func(b *testing.B) { benchRunnerReplay(b, 64) })
}

// ------------------------------------------------- Telemetry (PR 5)

// BenchmarkTelemetryOverhead isolates what live observability costs the
// serving path. Engines are always instrumented — the atomic counters
// are the source of truth behind Stats and Snapshot — so the marginal
// cost is measured directly: hotpath times the exact per-flow counter
// sequence the engine adds (packet count, flow completion, verdict with
// histogram observation; zero allocations, a handful of uncontended
// atomics), engine times the full instrumented pipeline per flow for
// scale, and snapshot times the scrape-side read that admin endpoints
// and progress callbacks pay.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("hotpath", func(b *testing.B) {
		tel := telemetry.New(traffic.LabelNames())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tel.AddPackets(1)
			tel.FlowCompleted()
			tel.Verdict(i&7, i&7 != 0, 0.25)
		}
	})
	b.Run("engine", func(b *testing.B) { benchEngine(b, 64) })
	b.Run("snapshot", func(b *testing.B) {
		cfg, live := benchStreamShape(b)
		eng, err := pipeline.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for p := range live.Packets {
			eng.Feed(live.Packets[p])
		}
		eng.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = eng.Telemetry().Snapshot()
		}
	})
}

// benchLabeledFlows featurizes the shared capture's ground-truth-labeled
// flows into a normalized matrix for accuracy measurement.
func benchLabeledFlows(t testing.TB) (*hdc.Matrix, []int) {
	t.Helper()
	if err := ensureBenchStream(); err != nil {
		t.Fatal(err)
	}
	cfg, live := benchStream.cfg, benchStream.live
	var feats [][]float32
	var labels []int
	a := netflow.NewAssembler(120, 1, func(f *netflow.Flow) {
		label, ok := live.Labels[f.Key]
		if !ok {
			return
		}
		row := f.AppendFeatures(make([]float32, 0, netflow.NumFeatures))
		cfg.Normalizer.ApplyVec(row)
		feats = append(feats, row)
		labels = append(labels, int(label))
	})
	for i := range live.Packets {
		a.Add(&live.Packets[i])
	}
	a.Flush()
	x := hdc.NewMatrix(len(feats), netflow.NumFeatures)
	for i, row := range feats {
		copy(x.Row(i), row)
	}
	return x, labels
}

// TestWriteBench3JSON measures the quantized streaming sweep — W1 through
// W32 against the float32 engine on identical traffic — and snapshots
// throughput, verdict accuracy against ground truth, and class-memory
// footprint to BENCH_3.json, after asserting that at every width the
// micro-batch path is bit-identical to per-flow classification. Gated
// like TestWriteBenchJSON:
//
//	CYBERHD_BENCH_JSON=1 go test -run TestWriteBench3JSON -v .
func TestWriteBench3JSON(t *testing.T) {
	if os.Getenv("CYBERHD_BENCH_JSON") == "" {
		t.Skip("set CYBERHD_BENCH_JSON=1 to write BENCH_3.json")
	}
	if err := ensureBenchStream(); err != nil {
		t.Fatal(err)
	}
	cfg, live := benchStream.cfg, benchStream.live
	m := cfg.Model.(*core.Model)
	x, y := benchLabeledFlows(t)
	accuracy := func(preds []int) float64 {
		correct := 0
		for i, p := range preds {
			if p == y[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(y))
	}

	// Per-width batch-vs-sync verdict bit-identity over the full capture.
	runStats := func(c pipeline.Config) pipeline.Stats {
		eng, err := pipeline.New(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range live.Packets {
			eng.Feed(live.Packets[i])
		}
		eng.Flush()
		return eng.Stats()
	}
	for _, w := range benchQuantWidths {
		qc := cfg
		qc.Quantize = w
		sync := runStats(qc)
		qc.BatchSize = 64
		batch := runStats(qc)
		if sync.Flows != batch.Flows || sync.Alerts != batch.Alerts {
			t.Fatalf("w=%d: batch flows/alerts %d/%d != sync %d/%d", w, batch.Flows, batch.Alerts, sync.Flows, sync.Alerts)
		}
		for c := range sync.ByClass {
			if sync.ByClass[c] != batch.ByClass[c] {
				t.Fatalf("w=%d: ByClass[%d] batch %d != sync %d", w, c, batch.ByClass[c], sync.ByClass[c])
			}
		}
	}

	floatRes := testing.Benchmark(func(b *testing.B) { benchEngine(b, 64) })
	report := map[string]any{
		"shape":      "BENCH_1 engine shape: CICIDS2017(1500)-trained 512-dim model, 400-session live capture, micro-batch 64",
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"float32": map[string]any{
			"flows_per_sec":     floatRes.Extra["flows/s"],
			"accuracy":          accuracy(m.PredictBatch(x)),
			"class_memory_bits": m.NumClasses() * m.Dim() * 32,
		},
		"batch_vs_sync_bit_identical": true, // asserted above at every width
		"note":                        "flows/s includes packet ingest + flow assembly + featurization; classification is the quantized stage. Accuracy is scored on the capture's ground-truth-labeled flows.",
	}
	widths := map[string]any{}
	for _, w := range benchQuantWidths {
		w := w
		q, err := quantize.FromCore(m, w)
		if err != nil {
			t.Fatal(err)
		}
		r := testing.Benchmark(func(b *testing.B) { benchQuantEngine(b, w, 64) })
		widths[fmt.Sprintf("%d", w)] = map[string]any{
			"flows_per_sec":     r.Extra["flows/s"],
			"speedup_vs_float":  r.Extra["flows/s"] / floatRes.Extra["flows/s"],
			"accuracy":          accuracy(q.PredictBatch(x)),
			"class_memory_bits": q.MemoryBits(),
		}
	}
	report["widths"] = widths
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_3.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_3.json:\n%s", buf)
}

// TestWriteBench4JSON re-measures the TestWriteBench3JSON sweep on the
// vectorized packed kernels (PR 6) and snapshots it to BENCH_4.json with
// the kernel dispatch report embedded, so the numbers are attributable to
// a code path. Because every packed kernel is pinned bit-identical to its
// scalar reference, the accuracy column must equal BENCH_3.json exactly —
// asserted here against the committed file; only the throughput column is
// allowed to move. Gated like TestWriteBenchJSON:
//
//	CYBERHD_BENCH_JSON=1 go test -run TestWriteBench4JSON -v .
func TestWriteBench4JSON(t *testing.T) {
	if os.Getenv("CYBERHD_BENCH_JSON") == "" {
		t.Skip("set CYBERHD_BENCH_JSON=1 to write BENCH_4.json")
	}
	if err := ensureBenchStream(); err != nil {
		t.Fatal(err)
	}
	cfg, live := benchStream.cfg, benchStream.live
	m := cfg.Model.(*core.Model)
	x, y := benchLabeledFlows(t)
	accuracy := func(preds []int) float64 {
		correct := 0
		for i, p := range preds {
			if p == y[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(y))
	}

	// The accuracy baseline: the packed kernels changed wholesale in PR 6
	// but are pinned bit-identical to their references, so verdicts — and
	// therefore the accuracy column — must not move from BENCH_3.
	var prior struct {
		Float32 struct {
			Accuracy float64 `json:"accuracy"`
		} `json:"float32"`
		Widths map[string]struct {
			Accuracy float64 `json:"accuracy"`
		} `json:"widths"`
	}
	if buf, err := os.ReadFile("BENCH_3.json"); err == nil {
		if err := json.Unmarshal(buf, &prior); err != nil {
			t.Fatalf("BENCH_3.json unreadable: %v", err)
		}
	}

	// Per-width batch-vs-sync verdict bit-identity over the full capture,
	// now exercising the assembly dispatch end to end.
	runStats := func(c pipeline.Config) pipeline.Stats {
		eng, err := pipeline.New(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range live.Packets {
			eng.Feed(live.Packets[i])
		}
		eng.Flush()
		return eng.Stats()
	}
	for _, w := range benchQuantWidths {
		qc := cfg
		qc.Quantize = w
		sync := runStats(qc)
		qc.BatchSize = 64
		batch := runStats(qc)
		if sync.Flows != batch.Flows || sync.Alerts != batch.Alerts {
			t.Fatalf("w=%d: batch flows/alerts %d/%d != sync %d/%d", w, batch.Flows, batch.Alerts, sync.Flows, sync.Alerts)
		}
		for c := range sync.ByClass {
			if sync.ByClass[c] != batch.ByClass[c] {
				t.Fatalf("w=%d: ByClass[%d] batch %d != sync %d", w, c, batch.ByClass[c], sync.ByClass[c])
			}
		}
	}

	floatAcc := accuracy(m.PredictBatch(x))
	if prior.Widths != nil && floatAcc != prior.Float32.Accuracy {
		t.Errorf("float32 accuracy %v != BENCH_3 %v", floatAcc, prior.Float32.Accuracy)
	}
	floatRes := testing.Benchmark(func(b *testing.B) { benchEngine(b, 64) })
	k := Kernels()
	report := map[string]any{
		"shape":      "BENCH_1 engine shape: CICIDS2017(1500)-trained 512-dim model, 400-session live capture, micro-batch 64",
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"kernels":    map[string]string{"float": k.Float, "packed": k.Packed},
		"float32": map[string]any{
			"flows_per_sec":     floatRes.Extra["flows/s"],
			"accuracy":          floatAcc,
			"class_memory_bits": m.NumClasses() * m.Dim() * 32,
		},
		"batch_vs_sync_bit_identical": true, // asserted above at every width
		"accuracy_equals_bench3":      true, // asserted above per width
		"note":                        "flows/s includes packet ingest + flow assembly + featurization; classification is the quantized stage. Accuracy is scored on the capture's ground-truth-labeled flows.",
	}
	widths := map[string]any{}
	for _, w := range benchQuantWidths {
		w := w
		q, err := quantize.FromCore(m, w)
		if err != nil {
			t.Fatal(err)
		}
		acc := accuracy(q.PredictBatch(x))
		key := fmt.Sprintf("%d", w)
		if p, ok := prior.Widths[key]; ok && acc != p.Accuracy {
			t.Errorf("w=%d: accuracy %v != BENCH_3 %v — bit-identical kernels must not change verdicts", w, acc, p.Accuracy)
		}
		r := testing.Benchmark(func(b *testing.B) { benchQuantEngine(b, w, 64) })
		widths[key] = map[string]any{
			"flows_per_sec":     r.Extra["flows/s"],
			"speedup_vs_float":  r.Extra["flows/s"] / floatRes.Extra["flows/s"],
			"accuracy":          acc,
			"class_memory_bits": q.MemoryBits(),
		}
	}
	report["widths"] = widths
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_4.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_4.json:\n%s", buf)
}

// TestWriteBenchJSON runs the kernel benchmarks and snapshots the results
// to BENCH_1.json. Gated behind an env var so plain `go test ./...` stays
// fast; run with:
//
//	CYBERHD_BENCH_JSON=1 go test -run TestWriteBenchJSON -v .
func TestWriteBenchJSON(t *testing.T) {
	if os.Getenv("CYBERHD_BENCH_JSON") == "" {
		t.Skip("set CYBERHD_BENCH_JSON=1 to write BENCH_1.json")
	}
	nsOp := func(r testing.BenchmarkResult) float64 { return float64(r.T.Nanoseconds()) / float64(r.N) }
	type cmp struct {
		NaiveNsOp   float64 `json:"naive_ns_op"`
		KernelNsOp  float64 `json:"kernel_ns_op"`
		Speedup     float64 `json:"speedup"`
		KernelAlloc int64   `json:"kernel_allocs_per_op"`
	}
	measure := func(naive, kernel func(b *testing.B)) cmp {
		rn := testing.Benchmark(naive)
		rk := testing.Benchmark(kernel)
		return cmp{
			NaiveNsOp:   nsOp(rn),
			KernelNsOp:  nsOp(rk),
			Speedup:     nsOp(rn) / nsOp(rk),
			KernelAlloc: rk.AllocsPerOp(),
		}
	}
	report := map[string]any{
		"shapes":                      "78 features, 512 dims, 5-8 classes; batch=256 (encode), 64 (engine)",
		"encode_batch_256x78_to_512":  measure(benchEncodeBatchNaive, benchEncodeBatchBlocked),
		"predict_single_78_to_512_k5": measure(benchPredictNaive, benchPredictPooled),
		"predict_encoded_scoring_k5":  measure(benchPredictEncodedNaive, benchPredictEncodedCached),
	}
	sync := testing.Benchmark(func(b *testing.B) { benchEngine(b, 0) })
	batch := testing.Benchmark(func(b *testing.B) { benchEngine(b, 64) })
	report["engine_stream_classify"] = map[string]any{
		"sync_flows_per_sec":    sync.Extra["flows/s"],
		"batch64_flows_per_sec": batch.Extra["flows/s"],
		"speedup":               batch.Extra["flows/s"] / sync.Extra["flows/s"],
	}
	report["engine_onflow_steady_state_allocs"] = 0 // asserted by pipeline.TestOnFlowAllocFree
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_1.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_1.json:\n%s", buf)
}

// TestWriteBench2JSON measures the flow-sharded multi-core engine against
// the single-worker Concurrent baseline on the BENCH_1 engine shape and
// snapshots the sweep to BENCH_2.json, after asserting that every
// configuration produces bit-identical aggregate verdict counts. Shard
// scaling tracks GOMAXPROCS, so the snapshot records it. Gated like
// TestWriteBenchJSON:
//
//	CYBERHD_BENCH_JSON=1 go test -run TestWriteBench2JSON -v .
func TestWriteBench2JSON(t *testing.T) {
	if os.Getenv("CYBERHD_BENCH_JSON") == "" {
		t.Skip("set CYBERHD_BENCH_JSON=1 to write BENCH_2.json")
	}
	if err := ensureBenchStream(); err != nil {
		t.Fatal(err)
	}
	cfg, live := benchStream.cfg, benchStream.live
	cfg.BatchSize = 64

	// Verdict bit-identity: single engine vs Concurrent vs every shard
	// count must agree on the aggregate per-class counts exactly.
	single, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range live.Packets {
		single.Feed(live.Packets[i])
	}
	single.Flush()
	want := single.Stats()

	check := func(name string, got pipeline.Stats) {
		t.Helper()
		if got.Flows != want.Flows || got.Alerts != want.Alerts {
			t.Fatalf("%s: flows/alerts %d/%d != single %d/%d", name, got.Flows, got.Alerts, want.Flows, want.Alerts)
		}
		for c := range want.ByClass {
			if got.ByClass[c] != want.ByClass[c] {
				t.Fatalf("%s: ByClass[%d] = %d != %d", name, c, got.ByClass[c], want.ByClass[c])
			}
		}
	}
	conc, err := pipeline.NewConcurrent(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := range live.Packets {
		conc.Feed(live.Packets[i])
	}
	conc.Close()
	check("concurrent", conc.Stats())

	shardCounts := []int{1, 2, 4, 8}
	for _, n := range shardCounts {
		scfg := cfg
		scfg.Shards = n
		sh, err := pipeline.NewSharded(scfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range live.Packets {
			sh.Feed(live.Packets[i])
		}
		sh.Close()
		check(fmt.Sprintf("shards%d", n), sh.Stats())
	}

	// Throughput sweep.
	concRes := testing.Benchmark(func(b *testing.B) { benchConcurrentEngine(b, 64) })
	concFPS := concRes.Extra["flows/s"]
	shardFPS := map[string]float64{}
	speedup := map[string]float64{}
	for _, n := range shardCounts {
		n := n
		r := testing.Benchmark(func(b *testing.B) { benchShardedEngine(b, n, 64) })
		key := fmt.Sprintf("%d", n)
		shardFPS[key] = r.Extra["flows/s"]
		speedup[key] = r.Extra["flows/s"] / concFPS
	}

	report := map[string]any{
		"shape":                    "BENCH_1 engine shape: CICIDS2017(1500)-trained 512-dim model, 400-session live capture, micro-batch 64",
		"gomaxprocs":               runtime.GOMAXPROCS(0),
		"concurrent_flows_per_sec": concFPS,
		"sharded_flows_per_sec":    shardFPS,
		"speedup_vs_concurrent":    speedup,
		"verdicts_bit_identical":   true, // asserted above and by pipeline.TestShardedMatchesSingleEngine
		"note":                     "shard scaling tracks GOMAXPROCS: with one core per shard the sweep approaches linear; on a single-CPU host all variants time-slice one core and measure ~1x",
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_2.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_2.json:\n%s", buf)
}
