// Streaming NIDS: train a detector on one synthetic capture, then monitor
// a live packet stream (Fig 1(a) of the paper) — flows assemble in real
// time, completed flows are encoded and classified, attacks raise alerts.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"cyberhd"
)

func main() {
	// Train on yesterday's labeled capture.
	training := cyberhd.CICIDS2017(4000, 7)
	det, err := cyberhd.TrainDetector(training, cyberhd.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector ready: %v\n\n", det)

	// Live monitoring: the engine ingests packets and alerts on completed
	// attack flows. (Here the "wire" is the traffic simulator.)
	alertsByClass := map[string]int{}
	eng, err := det.NewEngine(0, func(a cyberhd.Alert) {
		alertsByClass[a.ClassName]++
		if alertsByClass[a.ClassName] <= 3 { // show the first few per class
			fmt.Printf("ALERT t=%8.2fs  %-12s  %3d pkts %8.0f bytes  dur %6.2fs\n",
				a.Time, a.ClassName, a.Flow.TotalPackets(), a.Flow.TotalBytes(), a.Flow.Duration())
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	live := cyberhd.GenerateTraffic(cyberhd.TrafficConfig{Sessions: 1500, Seed: 1234})
	for i := range live.Packets {
		eng.Feed(&live.Packets[i])
	}
	eng.Flush()

	st := eng.Stats()
	fmt.Printf("\nprocessed %d packets → %d flows, %d alerts\n", st.Packets, st.Flows, st.Alerts)
	fmt.Println("alerts by class:")
	for name, n := range alertsByClass {
		fmt.Printf("  %-14s %d\n", name, n)
	}
}
