// Streaming NIDS: train a detector on one synthetic capture, then monitor
// a live packet stream (Fig 1(a) of the paper) through the serving
// runtime — a packet source pumps into the engine under a context, flows
// assemble and classify in real time, and attack verdicts fan out to
// alert sinks (here: a counting sink plus a rate-limited console printer,
// so an alert flood pages once instead of a thousand times).
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	"cyberhd"
)

func main() {
	// Train on yesterday's labeled capture.
	training := cyberhd.CICIDS2017(4000, 7)
	det, err := cyberhd.TrainDetector(training, cyberhd.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector ready: %v\n\n", det)

	// Egress: count everything, print a bounded sample. The rate limiter
	// forwards at most 2 alerts per class per 300 capture-seconds.
	alertsByClass := map[string]int{}
	counter := cyberhd.SinkFunc(func(a cyberhd.Alert) { alertsByClass[a.ClassName]++ })
	printer := cyberhd.NewRateLimitSink(cyberhd.SinkFunc(func(a cyberhd.Alert) {
		fmt.Printf("ALERT t=%8.2fs  %-12s  %3d pkts %8.0f bytes  dur %6.2fs\n",
			a.Time, a.ClassName, a.Flow.TotalPackets(), a.Flow.TotalBytes(), a.Flow.Duration())
	}), 2, 300)

	// Live monitoring, one call: the runner pumps the source into the
	// engine, auto-ticks from capture timestamps so idle flows evict and
	// verdicts never stall, drains on end of stream, and returns exact
	// final stats. (Here the "wire" is the traffic simulator; swap in
	// cyberhd.OpenCapture for an on-disk log, or any PacketSource.)
	//
	// WithProgress is the operator's mid-run view: a telemetry snapshot
	// every 120 capture-seconds — throughput, verdict counts, and how long
	// verdicts waited in micro-batch buffers. The same snapshot backs the
	// HTTP admin endpoint: det.ServeWithMetrics(ctx, ":9090", src, ...)
	// serves it as Prometheus /metrics and JSON /stats while the run is
	// live.
	live := cyberhd.GenerateTraffic(cyberhd.TrafficConfig{Sessions: 1500, Seed: 1234})
	st, err := det.Serve(context.Background(), cyberhd.NewSliceSource(live.Packets),
		cyberhd.WithSinks(counter, printer),
		cyberhd.WithBatchSize(32),
		cyberhd.WithProgress(120, func(s cyberhd.TelemetrySnapshot) {
			fmt.Printf("  · progress: %d pkts, %d flows, %d alerts (%d suppressed), mean verdict wait %.2fs\n",
				s.Packets, s.Flows, s.Alerts, s.Suppressed, meanWait(s))
		}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nprocessed %d packets → %d flows, %d alerts (%d printed, %d rate-limited)\n",
		st.Packets, st.Flows, st.Alerts, st.Alerts-printer.Suppressed(), printer.Suppressed())
	fmt.Println("alerts by class:")
	for name, n := range alertsByClass {
		fmt.Printf("  %-14s %d\n", name, n)
	}
}

// meanWait is the average capture-time delay between a flow completing
// and its verdict — the cost of micro-batching, straight from the
// telemetry histogram.
func meanWait(s cyberhd.TelemetrySnapshot) float64 {
	if s.Latency.Count == 0 {
		return 0
	}
	return s.Latency.Sum / float64(s.Latency.Count)
}
