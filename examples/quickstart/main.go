// Quickstart: synthesize the NSL-KDD reconstruction, train a CyberHD
// detector with the paper's defaults, and classify a few flows.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cyberhd"
)

func main() {
	// 1. Data: 10k samples of the 41-feature, 5-class NSL-KDD schema.
	ds := cyberhd.NSLKDD(10000, 42)
	fmt.Printf("dataset %s: %d samples, %d features, classes %v\n",
		ds.Name, ds.Len(), ds.NumFeatures(), ds.ClassNames)

	// 2. Train with the paper-calibrated defaults: D=512 physical
	// dimensions, 20%% of the least significant regenerated over 7 cycles.
	det, err := cyberhd.TrainDetector(ds, cyberhd.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(det)
	fmt.Printf("effective dimensionality D* = %d (8x-class capacity from %d physical dims)\n\n",
		det.EffectiveDim(), det.Model.Dim())

	// 3. Classify: raw feature vectors go straight in; the detector owns
	// normalization.
	for i := 0; i < 5; i++ {
		got := det.Classify(ds.X.Row(i))
		fmt.Printf("sample %d: predicted=%-8s actual=%s\n", i, got, ds.ClassNames[ds.Y[i]])
	}

	// 4. Edge deployment: quantize the class memory to 1 bit per element.
	q, err := cyberhd.Quantize(det.Model, cyberhd.W1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n1-bit model memory: %d bits (%.1fx smaller than float32)\n",
		q.MemoryBits(), 32.0)

	// Next step: live serving. A detector trained on CIC flow features
	// monitors packet streams in one call — det.Serve(ctx, source, opts...)
	// pumps any PacketSource through the engine and fans alerts to sinks.
	// See examples/streaming and examples/quantization.
}
