// Quantization: the Table I mechanism at example scale. The class memory
// is lowered to every supported bitwidth; accuracy, memory footprint and
// the modeled CPU/FPGA energy efficiency are reported side by side.
//
//	go run ./examples/quantization
package main

import (
	"fmt"
	"log"

	"cyberhd"
	"cyberhd/internal/bitpack"
	"cyberhd/internal/hwmodel"
	"cyberhd/internal/quantize"
)

func main() {
	ds := cyberhd.UNSWNB15(8000, 42)
	train, test, _ := ds.NormalizedSplit(0.75, 1)
	det, err := cyberhd.TrainDetector(ds, cyberhd.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector: %v\n\n", det)

	rows, err := hwmodel.Table(hwmodel.DefaultCPU(), hwmodel.DefaultFPGA(), hwmodel.PaperEffectiveDims)
	if err != nil {
		log.Fatal(err)
	}
	effByWidth := map[bitpack.Width]hwmodel.Row{}
	for _, r := range rows {
		effByWidth[r.Width] = r
	}

	fmt.Printf("%-6s %10s %10s %12s %12s %12s %14s\n",
		"bits", "accuracy", "retrained", "memory", "CPU eff", "FPGA eff", "FPGA latency")
	for _, w := range bitpack.Widths {
		q, err := cyberhd.Quantize(det.Model, w)
		if err != nil {
			log.Fatal(err)
		}
		// Quantization-aware retraining recovers low-precision accuracy at
		// fixed D; Table I's growing Effective-D row is the alternative.
		qr, err := quantize.Retrain(det.Model, w, train.X, train.Y, 5, 0.1, 9)
		if err != nil {
			log.Fatal(err)
		}
		row := effByWidth[w]
		lat := hwmodel.DefaultFPGA().LatencyPerQuery(row.EffectiveDim, det.Model.NumClasses(), w)
		fmt.Printf("%-6d %9.2f%% %9.2f%% %11db %11.1fx %11.1fx %11.2fµs\n",
			w, 100*q.Evaluate(test.X, test.Y), 100*qr.Evaluate(test.X, test.Y), q.MemoryBits(),
			row.CPUEff, row.FPGAEff, lat*1e6)
	}
	fmt.Println("\nefficiencies normalized to the 1-bit CPU configuration (Table I convention)")
	fmt.Println("FPGA model: Alveo U50-class fabric, 200 MHz, <20 W")
	fmt.Println("accuracy at fixed D=512 collapses at 1-2 bits: exactly why Table I's")
	fmt.Println("Effective D grows as precision falls (1.2k at 32-bit -> 8.8k at 1-bit)")
}
