// Quantized streaming: the Table I bitwidth sweep as a live serving mode.
// One detector is trained, then the same capture is served at every
// supported bitwidth through the one-call runtime (Detector.Serve with
// WithQuantized — the same path as `cyberhd detect -width N`): completed
// flows are encoded in float, packed to w-bit integers, and scored
// against the packed class memory by XNOR/popcount (1-bit) or
// widened-integer (2–32 bit) kernels. Verdict counts, class-memory
// footprint and the modeled FPGA efficiency are reported per width,
// against the float32 engine on identical traffic.
//
//	go run ./examples/quantization
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cyberhd"
	"cyberhd/internal/hwmodel"
)

func main() {
	// Train once; every serve below runs this one model.
	det, err := cyberhd.TrainDetector(cyberhd.CICIDS2017(3000, 7), cyberhd.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector ready: %v\n\n", det)
	live := cyberhd.GenerateTraffic(cyberhd.TrafficConfig{Sessions: 800, Seed: 1234})

	// stream serves the capture once at width w (0 = float32) and returns
	// the final stats and wall-clock time. Identical traffic, identical
	// micro-batching — only the inference kernels change.
	stream := func(w cyberhd.Width) (cyberhd.EngineStats, time.Duration) {
		start := time.Now()
		st, err := det.Serve(context.Background(), cyberhd.NewSliceSource(live.Packets),
			cyberhd.WithBatchSize(64), // micro-batch through the blocked kernels
			cyberhd.WithQuantized(w))
		if err != nil {
			log.Fatal(err)
		}
		return st, time.Since(start)
	}

	base, baseDur := stream(0)
	fmt.Printf("float32 engine: %d flows, %d alerts, %d-bit class memory, %.0f flows/s\n\n",
		base.Flows, base.Alerts, det.Model.NumClasses()*det.Model.Dim()*32,
		float64(base.Flows)/baseDur.Seconds())

	rows, err := hwmodel.Table(hwmodel.DefaultCPU(), hwmodel.DefaultFPGA(), hwmodel.PaperEffectiveDims)
	if err != nil {
		log.Fatal(err)
	}
	fpgaEff := map[cyberhd.Width]float64{}
	for _, r := range rows {
		fpgaEff[r.Width] = r.FPGAEff
	}

	fmt.Printf("%-6s %8s %8s %12s %10s %10s\n",
		"bits", "flows", "alerts", "memory", "flows/s", "FPGA eff")
	for _, w := range []cyberhd.Width{cyberhd.W32, cyberhd.W16, cyberhd.W8, cyberhd.W4, cyberhd.W2, cyberhd.W1} {
		st, dur := stream(w)
		q, err := cyberhd.Quantize(det.Model, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %8d %8d %11db %10.0f %9.1fx\n",
			w, st.Flows, st.Alerts, q.MemoryBits(), float64(st.Flows)/dur.Seconds(), fpgaEff[w])
	}

	fmt.Println("\nverdicts at a given width are independent of batch size and shard")
	fmt.Println("count; alert drift versus float32 is quantization error at fixed")
	fmt.Println("D=512 — Table I grows Effective D as precision falls to recover it.")
	fmt.Println("FPGA efficiencies are modeled (Alveo U50-class, Table I convention).")
}
