// Robustness: the Fig 5 mechanism at example scale. Random bit flips are
// injected into a quantized CyberHD class memory and into a DNN's float32
// weights; HDC's holographic redundancy absorbs the damage, the DNN's
// positional float encoding does not.
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"cyberhd"
	"cyberhd/internal/baseline/mlp"
	"cyberhd/internal/faults"
	"cyberhd/internal/rng"
)

func main() {
	ds := cyberhd.NSLKDD(8000, 42)
	train, test, _ := ds.NormalizedSplit(0.75, 1)

	// Each precision runs at its iso-accuracy dimensionality (Table I's
	// ratios at repo scale): 1-bit needs ~2.4x the dimensions of 8-bit.
	// Low-precision deployments use static class memories — regeneration
	// leaves immature dimensions that sign() quantization amplifies.
	train1 := func(dim int) *cyberhd.Model {
		enc := cyberhd.NewRBFEncoder(train.NumFeatures(), dim, 0, 5)
		m, err := cyberhd.Train(enc, train.X, train.Y, cyberhd.TrainOptions{
			Classes: train.NumClasses(), Epochs: 15, LearningRate: 0.1, Seed: 6})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	m1 := train1(3754) // 8.8k x (512/1200)
	m8 := train1(1536) // 3.6k x (512/1200)
	dnn, err := mlp.Train(train.X, train.Y, train.NumClasses(), mlp.Options{Epochs: 15, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	q1, _ := cyberhd.Quantize(m1, cyberhd.W1)
	q8, _ := cyberhd.Quantize(m8, cyberhd.W8)
	clean1 := q1.Evaluate(test.X, test.Y)
	clean8 := q8.Evaluate(test.X, test.Y)
	cleanDNN := dnn.Evaluate(test.X, test.Y)
	fmt.Printf("clean accuracy: CyberHD-1bit %.3f, CyberHD-8bit %.3f, DNN %.3f\n\n",
		clean1, clean8, cleanDNN)

	fmt.Printf("%-8s %14s %14s %14s\n", "err rate", "HD 1-bit loss", "HD 8-bit loss", "DNN loss")
	r := rng.New(99)
	for _, rate := range []float64{0.01, 0.02, 0.05, 0.10, 0.15} {
		h1 := q1.Clone()
		faults.InjectQuantizedBits(h1.Class, rate, r)
		h8 := q8.Clone()
		faults.InjectQuantizedBits(h8.Class, rate, r)
		hd := dnn.Clone()
		for _, w := range hd.Weights() {
			faults.InjectFloat32Bits(w, rate, 1, r)
		}
		fmt.Printf("%7.0f%% %13.1fpp %13.1fpp %13.1fpp\n", 100*rate,
			100*(clean1-h1.Evaluate(test.X, test.Y)),
			100*(clean8-h8.Evaluate(test.X, test.Y)),
			100*(cleanDNN-hd.Evaluate(test.X, test.Y)))
	}
	fmt.Println("\n(paper Fig 5: DNN loses up to 41pp at 15% error; 1-bit CyberHD ≤ 4pp)")
}
