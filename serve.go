package cyberhd

import (
	"context"
	"runtime"

	"cyberhd/internal/bitpack"
	"cyberhd/internal/control"
	"cyberhd/internal/core"
	"cyberhd/internal/hdc"
	"cyberhd/internal/netflow"
	"cyberhd/internal/pipeline"
	"cyberhd/internal/telemetry"
	"cyberhd/internal/traffic"
)

// Serving runtime surface: the Stream/Source/Sink abstractions and the
// Runner that ties them together (see the "Serving runtime" section of
// ARCHITECTURE.md). The typical one-call path:
//
//	stats, err := det.Serve(ctx, cyberhd.NewSliceSource(capture),
//	    cyberhd.WithBatchSize(64),
//	    cyberhd.WithSinks(cyberhd.NewJSONLSink(os.Stdout)))
type (
	// Stream is the uniform serving contract (Feed/Tick/Flush/Close/
	// Stats/Feedback) implemented by Engine, ConcurrentEngine and
	// ShardedEngine.
	Stream = pipeline.Stream
	// ConcurrentEngine decouples ingestion from classification with one
	// background worker (see pipeline.NewConcurrent).
	ConcurrentEngine = pipeline.Concurrent
	// PacketSource yields a time-ordered packet stream (see NewSliceSource,
	// OpenCapture, ReplayTraffic).
	PacketSource = netflow.PacketSource
	// SliceSource replays an in-memory packet slice.
	SliceSource = netflow.SliceSource
	// CaptureFile streams an on-disk binary capture in O(1) memory.
	CaptureFile = netflow.CaptureFile
	// PCAPFile streams an on-disk PCAP or pcapng capture in O(1) memory
	// (see OpenPCAP).
	PCAPFile = netflow.PCAPFile
	// PCAPSource streams packets out of classic PCAP or pcapng bytes —
	// the dependency-free interchange-format front door (Ethernet/VLAN/
	// IPv4/IPv6/TCP/UDP/ICMP decode).
	PCAPSource = netflow.PCAPSource
	// ReplaySource replays generated traffic, optionally paced against the
	// wall clock (live-replay mode).
	ReplaySource = traffic.ReplaySource
	// AlertSink consumes non-benign verdicts (see SinkFunc, ChanSink,
	// JSONLSink, RateLimitSink).
	AlertSink = pipeline.AlertSink
	// SinkFunc adapts a plain function to an AlertSink.
	SinkFunc = pipeline.SinkFunc
	// ChanSink delivers alerts into a channel (blocking, lossless).
	ChanSink = pipeline.ChanSink
	// JSONLSink writes one AlertRecord JSON object per alert.
	JSONLSink = pipeline.JSONLSink
	// AlertRecord is the JSON shape JSONLSink writes.
	AlertRecord = pipeline.AlertRecord
	// RateLimitSink caps deliveries per class per capture-time window.
	RateLimitSink = pipeline.RateLimitSink
	// Runner pumps a PacketSource into a Stream under a context.
	Runner = pipeline.Runner
	// Telemetry is the lock-free counter collector every engine records
	// into — share one (WithTelemetry) to observe a run live from any
	// goroutine, or read it through Stream.Telemetry / Runner.Telemetry.
	Telemetry = telemetry.Collector
	// TelemetrySnapshot is one point-in-time read of a Telemetry
	// collector: counters plus the verdict-latency histogram.
	TelemetrySnapshot = telemetry.Snapshot
	// MetricsServer is a running admin endpoint serving /metrics
	// (Prometheus text format), /stats (JSON) and /healthz.
	MetricsServer = telemetry.Server
	// KernelDispatch identifies which kernel implementations the running
	// build+CPU selected, one path name per domain (see Kernels).
	KernelDispatch = telemetry.Kernels
	// OverloadPolicy configures the ingress admission gate: admission
	// wait bound, shedding thresholds, per-tenant token-bucket rates.
	// The zero value is the lossless default (no gate installed).
	OverloadPolicy = pipeline.OverloadPolicy
	// OverloadMode selects lossless-blocking (default) or bounded-latency
	// admission — see OverloadLossless and OverloadBounded.
	OverloadMode = pipeline.OverloadMode
	// OverloadState is the gate's load-shedding state (normal, pressured,
	// shedding), readable live via Gate.State and telemetry.
	OverloadState = pipeline.OverloadState
	// DropReason labels why an ingress packet was refused (backpressure,
	// new-flow shedding, tenant rate) — the label on
	// cyberhd_packets_dropped_total and on WithDropCallback deliveries.
	DropReason = telemetry.DropReason
	// Gate is the admission-controlled ingress wrapper around any Stream;
	// Serve installs one automatically under a bounded OverloadPolicy.
	Gate = pipeline.Gate
	// Classifier is the minimal scoring contract engines serve through
	// (Predict/PredictBatchInto/NumClasses) — satisfied by Model,
	// COWModel, QuantizedModel and QuantizedLive.
	Classifier = pipeline.Classifier
	// ShadowTap is the shadow-serving slot of the model control plane: a
	// swappable candidate classifier that engines score behind the
	// primary, counting verdict divergence per class into telemetry.
	// Attach with WithShadow; swap candidates with Set/Clear at any time.
	ShadowTap = pipeline.Shadow
	// ControlPlane serves the model-management HTTP routes (GET/POST
	// /model, /model/promote, /model/demote) over one serving COWModel —
	// validated hot reload, shadow attach and promotion, each one atomic
	// swap. Build with NewControlPlane, mount via ServeMetricsWith.
	ControlPlane = control.Plane
	// ControlPlaneConfig assembles a ControlPlane: the serving COWModel,
	// its quantization width, the engine's ShadowTap and the sanity gate.
	ControlPlaneConfig = control.Config
	// SanityBatch is the acceptance gate an uploaded model must pass
	// before a ControlPlane publishes it (see control.SanityBatch).
	SanityBatch = control.SanityBatch
	// ModelStatus is the ControlPlane's GET /model response: serving
	// version, geometry, width and shadow state.
	ModelStatus = control.Status
	// SnapshotInfo describes a decoded model snapshot: persistence
	// format, COW model version, recorded serving width and geometry.
	SnapshotInfo = core.SnapshotInfo
)

// Overload modes, states and drop reasons, re-exported so policy
// construction never needs the internal packages.
const (
	// OverloadLossless is the default admission mode: Feed blocks on full
	// buffers and never drops — replay determinism untouched.
	OverloadLossless = pipeline.OverloadLossless
	// OverloadBounded bounds ingress latency instead of loss: counted
	// drops, flow-aware shedding, per-tenant fairness.
	OverloadBounded = pipeline.OverloadBounded
	// DropBackpressure counts packets refused because ingress buffers
	// stayed full past the admission wait bound.
	DropBackpressure = telemetry.DropBackpressure
	// DropNewFlowShed counts packets refused in the shedding state
	// because they would have started a new flow.
	DropNewFlowShed = telemetry.DropNewFlowShed
	// DropTenantRate counts packets refused by their tenant's token
	// bucket.
	DropTenantRate = telemetry.DropTenantRate
)

// Kernels reports which kernel implementations this build+CPU selected at
// startup: the float32 path (hdc GEMM/cosine — "avx2", "avx" or
// "generic") and the quantized path (bitpack packed dots and quantizers —
// "avx2", "avx" or "popcnt-swar"). Engines stamp the same report into
// their telemetry collector, so live runs expose it at /stats ("kernels")
// and /metrics (cyberhd_kernel_info); this function answers the question
// without building an engine — e.g. in startup banners and benchmark
// records.
func Kernels() KernelDispatch {
	return KernelDispatch{Float: hdc.KernelPath(), Packed: bitpack.KernelPath()}
}

// Source and sink constructors, re-exported from the implementation
// packages so the full serving runtime is reachable from the facade.
var (
	// NewSliceSource wraps an in-memory packet slice as a PacketSource.
	NewSliceSource = netflow.NewSliceSource
	// OpenCapture opens a binary capture for O(1)-memory streaming replay.
	OpenCapture = netflow.OpenCapture
	// OpenPCAP opens a PCAP or pcapng capture for O(1)-memory streaming
	// replay through the decode stack — real-world captures as a
	// PacketSource, no external dependencies.
	OpenPCAP = netflow.OpenPCAP
	// NewPCAPSource streams a PCAP or pcapng byte stream (magic-sniffed)
	// as a PacketSource.
	NewPCAPSource = netflow.NewPCAPSource
	// ReplayTraffic replays a generated TrafficStream, paced at the given
	// multiple of capture time when speed > 0 (live-replay mode).
	ReplayTraffic = traffic.Replay
	// NewJSONLSink writes alert records to a writer, one JSON line each.
	NewJSONLSink = pipeline.NewJSONLSink
	// NewRateLimitSink caps delivery at burst alerts per class per window
	// capture-seconds before forwarding to an inner sink.
	NewRateLimitSink = pipeline.NewRateLimitSink
	// NewTelemetry builds a collector for the given class names — pass it
	// to WithTelemetry and a ServeMetrics endpoint to watch a run live.
	NewTelemetry = telemetry.New
	// ServeMetrics starts the admin endpoint (/metrics, /stats, /healthz)
	// for a collector on addr; close the returned server when done.
	ServeMetrics = telemetry.ListenAndServe
	// NewGate wraps a hand-built Stream in the bounded-overload admission
	// gate — Serve and NewServeRunner do this automatically when the
	// config's OverloadPolicy is bounded.
	NewGate = pipeline.NewGate
	// ServeMetricsWith is ServeMetrics plus extra routes on the same
	// admin mux — the way to mount a ControlPlane's Handler at "/model"
	// and "/model/" alongside /metrics, /stats and /healthz.
	ServeMetricsWith = telemetry.ListenAndServeWith
	// NewShadowTap returns an empty shadow tap; attach it to an engine
	// with WithShadow and to a ControlPlane via ControlPlaneConfig.
	NewShadowTap = pipeline.NewShadow
	// NewControlPlane validates a ControlPlaneConfig and builds the
	// model control plane.
	NewControlPlane = control.New
	// SaveModelSnapshot writes a COWModel publication as a versioned v2
	// snapshot: encoder state, class matrix, scorer norms, COW version
	// and the derived quantized width — everything LoadModelSnapshot
	// needs to restore bit-identical serving.
	SaveModelSnapshot = core.SaveSnapshot
	// LoadModelSnapshot restores a COWModel from a snapshot in either
	// persistence format (v1 core.Save files load too, rebuilding
	// derived state) and reports what it loaded.
	LoadModelSnapshot = core.LoadSnapshot
	// SaveModelSnapshotFile and LoadModelSnapshotFile are the file-path
	// spellings of SaveModelSnapshot/LoadModelSnapshot.
	SaveModelSnapshotFile = core.SaveSnapshotFile
	// LoadModelSnapshotFile restores a COWModel from a snapshot file.
	LoadModelSnapshotFile = core.LoadSnapshotFile
	// EncodeSanityBatch writes a SanityBatch in the wire format a
	// ControlPlane accepts as the "sanity" part of a multipart upload.
	EncodeSanityBatch = control.EncodeSanityBatch
)

// EngineOption composes an EngineConfig — the builder form of engine
// construction. Options apply in order over the detector's base config
// (model, normalizer, class names), so later options win; the EngineConfig
// struct remains the compatible escape hatch for exotic setups.
type EngineOption func(*EngineConfig)

// WithBatchSize buffers completed flows and classifies them in n-flow
// micro-batches through the blocked GEMM kernels (0 or 1 classifies every
// flow immediately). The bounded verdict delay this trades for throughput
// is cleared by Tick — which Serve issues automatically from capture
// timestamps — and by Flush.
func WithBatchSize(n int) EngineOption {
	return func(cfg *EngineConfig) { cfg.BatchSize = n }
}

// WithQuantized lowers classification to packed w-bit integer inference
// (the paper's Table I bitwidths as a live serving mode). Zero serves
// float32.
func WithQuantized(w Width) EngineOption {
	return func(cfg *EngineConfig) { cfg.Quantize = w }
}

// WithModel serves through m instead of the detector's own model —
// typically a COWModel (or QuantizedLive) wrapping it, so hot reload and
// feedback publish atomically against concurrent reads, or a model
// restored by LoadModelSnapshot.
func WithModel(m Classifier) EngineOption {
	return func(cfg *EngineConfig) { cfg.Model = m }
}

// WithShadow attaches a shadow tap: every classified flow is also scored
// by the tap's candidate (when one is set) and verdict divergence is
// counted per class into telemetry — the observe step of the
// retrain→shadow→promote loop. Share the same tap with a ControlPlane to
// drive it over HTTP.
func WithShadow(tap *ShadowTap) EngineOption {
	return func(cfg *EngineConfig) { cfg.Shadow = tap }
}

// WithShards serves through the flow-sharded multi-core engine with n
// shards when n > 1; n == 0 selects one shard per core
// (runtime.GOMAXPROCS, resolved here so the stored config says what will
// run). Without this option — or when the count resolves to 1 — Serve
// uses the single synchronous engine, whose alert order is deterministic
// run to run; sharded stats are bit-identical but alert interleaving
// across shards is scheduling-dependent, so sharding is an explicit
// choice.
func WithShards(n int) EngineOption {
	return func(cfg *EngineConfig) {
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		cfg.Shards = n
	}
}

// WithShardBuffer bounds each shard's lossless ingress buffer (<= 0
// selects 1024).
func WithShardBuffer(n int) EngineOption {
	return func(cfg *EngineConfig) { cfg.ShardBuffer = n }
}

// WithBenignClass sets the class index that does not alert (default 0).
func WithBenignClass(class int) EngineOption {
	return func(cfg *EngineConfig) { cfg.BenignClass = class }
}

// WithFlowTimeouts overrides flow assembly: idle seconds end a silent
// flow, gap seconds split its active periods (defaults: the CIC
// conventions, 120 s and 1 s).
func WithFlowTimeouts(idle, gap float64) EngineOption {
	return func(cfg *EngineConfig) { cfg.IdleTimeout, cfg.ActivityGap = idle, gap }
}

// WithOnAlert installs a synchronous alert callback (runs before sinks).
func WithOnAlert(fn func(Alert)) EngineOption {
	return func(cfg *EngineConfig) { cfg.OnAlert = fn }
}

// WithSinks appends alert sinks; every alert reaches every sink, in
// order, serialized per the engine's alert contract.
func WithSinks(sinks ...AlertSink) EngineOption {
	return func(cfg *EngineConfig) { cfg.Sinks = append(cfg.Sinks, sinks...) }
}

// WithTelemetry makes the engine record into t instead of a private
// collector — the way to share one collector between a running engine
// and an observer such as a ServeMetrics endpoint. t's class count must
// match the detector's. A sharded engine shares t across all shards.
func WithTelemetry(t *Telemetry) EngineOption {
	return func(cfg *EngineConfig) { cfg.Telemetry = t }
}

// WithProgress installs a live-progress callback for Serve and Runner:
// fn receives a telemetry snapshot as packet timestamps cross each
// every-capture-seconds boundary (0 selects 10 s), plus one final
// settled snapshot after the drain. fn runs on the serving goroutine and
// must not call back into the engine.
func WithProgress(every float64, fn func(TelemetrySnapshot)) EngineOption {
	return func(cfg *EngineConfig) { cfg.Progress, cfg.ProgressInterval = fn, every }
}

// WithOverloadPolicy sets the ingress admission policy for Serve and
// NewServeRunner. A bounded policy wraps the engine in a Gate: admission
// waits at most MaxWait, refused packets are dropped and counted
// (cyberhd_packets_dropped_total{reason=...}), shedding is flow-aware and
// tenants are rate-isolated — see OverloadPolicy for every knob. The
// default (and the zero policy) is lossless-blocking, bit-identical to
// serving without the option. Later WithTenantKey/WithDropCallback
// options adjust the same policy in place.
func WithOverloadPolicy(p OverloadPolicy) EngineOption {
	return func(cfg *EngineConfig) { cfg.Overload = p }
}

// WithTenantKey overrides how the overload gate's token buckets group
// packets into tenants (default: the /24 subnet of the canonical flow
// key's lower endpoint, so both directions of a flow bill the same
// tenant). Only meaningful together with a bounded overload policy that
// sets a tenant rate.
func WithTenantKey(fn func(*Packet) uint64) EngineOption {
	return func(cfg *EngineConfig) { cfg.Overload.TenantKey = fn }
}

// WithDropCallback observes every packet the overload gate refuses,
// with its reason — the hook for mirroring shed traffic to a pcap ring
// or a sampler. fn runs on the feeding goroutine under the gate lock:
// keep it fast and never call back into the stream or gate. Only
// meaningful together with a bounded overload policy.
func WithDropCallback(fn func(Packet, DropReason)) EngineOption {
	return func(cfg *EngineConfig) { cfg.Overload.OnDrop = fn }
}

// WithTickInterval sets the auto-tick period in capture seconds used by
// Serve and Runner (0 selects 1 s, negative disables): the runner ticks
// the engine as packet timestamps cross interval boundaries, so a
// completed flow's verdict never waits in a micro-batch longer than one
// interval of capture time.
func WithTickInterval(seconds float64) EngineOption {
	return func(cfg *EngineConfig) { cfg.TickInterval = seconds }
}

// EngineConfig assembles the detector's serving configuration: the
// trained model, its normalizer and class names, with opts applied in
// order. Pass the result to NewEngine/NewShardedEngine/NewServeRunner, or
// adjust fields directly for anything without an option.
func (d *Detector) EngineConfig(opts ...EngineOption) EngineConfig {
	cfg := EngineConfig{
		Model:      d.Model,
		Normalizer: d.Normalizer,
		ClassNames: d.ClassNames,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// NewServeRunner builds the engine cfg describes (cfg.Shards > 1 the
// flow-sharded engine, anything else the deterministic single-core
// engine — see WithShards) and a Runner that will pump src through it:
// the assembled-but-not-started form of Serve, for callers that need the
// Runner (custom contexts, access to the Stream for Feedback) rather
// than one call.
func NewServeRunner(cfg EngineConfig, src PacketSource) (*Runner, error) {
	return pipeline.NewRunner(cfg, src)
}

// Serve is the one-call serving path: build the engine described by the
// detector and opts, pump src through it until the source ends or ctx is
// cancelled (auto-ticking from capture timestamps), drain
// deterministically, and return the final stats. On cancellation the
// stats cover everything fed before the cancel and err is ctx.Err().
func (d *Detector) Serve(ctx context.Context, src PacketSource, opts ...EngineOption) (EngineStats, error) {
	r, err := NewServeRunner(d.EngineConfig(opts...), src)
	if err != nil {
		return EngineStats{}, err
	}
	return r.Run(ctx)
}

// Serve runs det.Serve — the package-level spelling of the one-call
// serving path.
func Serve(ctx context.Context, det *Detector, src PacketSource, opts ...EngineOption) (EngineStats, error) {
	return det.Serve(ctx, src, opts...)
}

// ServeWithMetrics is Serve plus a live admin endpoint: it binds addr,
// serves /metrics (Prometheus text format), /stats (JSON) and /healthz
// for the duration of the run, and closes the endpoint when the run
// ends. The engine and the endpoint share one collector — pass your own
// with WithTelemetry to keep scraping after the run, or to aggregate
// several runs on one endpoint.
func (d *Detector) ServeWithMetrics(ctx context.Context, addr string, src PacketSource, opts ...EngineOption) (EngineStats, error) {
	cfg := d.EngineConfig(opts...)
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New(cfg.ClassNames)
	}
	srv, err := telemetry.ListenAndServe(addr, cfg.Telemetry)
	if err != nil {
		return EngineStats{}, err
	}
	defer srv.Close()
	r, err := NewServeRunner(cfg, src)
	if err != nil {
		return EngineStats{}, err
	}
	return r.Run(ctx)
}
